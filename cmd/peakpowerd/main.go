// Command peakpowerd serves the co-analysis over HTTP: clients POST an
// application (a built-in benchmark name or assembly source) plus options
// and receive the serialized, versioned peakpower.Report. Analyses are
// content-addressed-cached across requests — repeated analyses of the same
// image and options are served without re-exploration — and the server
// handles concurrent requests against shared per-target analyzers (the
// netlist is built once per design point).
//
// Usage:
//
//	peakpowerd [-addr :8090] [-cache 256] [-timeout 2m]
//	           [-data DIR] [-jobs 2] [-queue 64] [-drain-timeout 5s]
//	           [-scrub] [-webhook-secret S]
//	           [-coordinator [-fleet-lease-ttl 10s] [-fleet-local-slots 1]]
//	           [-join http://coordinator:8090]
//
// Endpoints:
//
//	GET  /healthz        liveness + cache statistics
//	GET  /readyz         readiness: queue depth, in-flight jobs, disk tier,
//	                     fleet membership + outstanding leases (coordinator)
//	GET  /debug/vars     expvar counters (jobs, queue, cache, fleet)
//	GET  /v1/targets     registered design points
//	GET  /v1/benchmarks  benchmark suite (?target=..., default ulp430)
//	POST /v1/analyze     run (or serve from cache) one analysis, synchronously
//	POST /v1/jobs        submit an analysis job; 202 + job ID immediately
//	GET  /v1/jobs/{id}   poll a job: state, then the Report (or error)
//	POST /v1/fleet/*     fleet protocol (coordinator mode; see internal/fleet)
//
// POST /v1/analyze and /v1/jobs share a request body:
//
//	{
//	  "target":  "ulp430",          // optional, default "ulp430"
//	  "bench":   "mult",            // either a built-in benchmark...
//	  "source":  "...", "name": "app",  // ...or assembly source + name
//	  "options": {                  // all optional
//	    "max_cycles": 0, "max_nodes": 0, "coi": 0,
//	    "clock_hz": 0, "engine": "packed", "timeout_ms": 0,
//	    "interrupts": {"min_latency": 8, "max_latency": 24}
//	  }
//	}
//
// The /v1/analyze response is the Report's canonical JSON — bit-identical
// to an in-process Analyze of the same target, application, and options.
// Failures return {"error": "..."} with a classifying status code:
// 400 (malformed request), 404 (unknown target, benchmark, or job),
// 422 (assembly failure or exhausted exploration budget),
// 429 + Retry-After (job queue full), 503 (draining),
// 504 (deadline), 500 (other analysis failures).
//
// Crash safety: with -data set, accepted jobs are journaled to
// DIR/jobs (atomic per-job records) and sealed Reports are written
// through to a verified content-addressed store under DIR/reports. A
// killed server re-enqueues interrupted jobs on restart and resumes
// their explorations from per-job checkpoints, sealing Reports
// byte-identical to an uninterrupted run. Without -data the server is
// ephemeral: jobs and cache die with the process.
//
// Fleet mode: with -coordinator (requires -data), durable jobs'
// explorations are split into checkpoint-journal tasks and leased to
// workers started with -join <coordinator-url>; the sealed Report is
// byte-identical to a single-node run at any fleet size (see
// internal/fleet). Jobs submitted with "callback_url" receive a webhook
// POST of their terminal status, HMAC-SHA256-signed when
// -webhook-secret is set.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/jobstore"
	"repro/peakpower"
)

func main() {
	cfg := serverConfig{}
	addr := flag.String("addr", ":8090", "listen address")
	flag.IntVar(&cfg.cacheSize, "cache", 256, "analysis cache capacity in reports (0 = unbounded)")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-request analysis deadline cap")
	flag.StringVar(&cfg.dataDir, "data", "", "durable state directory (empty = ephemeral: no job journal, no disk report store)")
	flag.IntVar(&cfg.workers, "jobs", 2, "async job worker pool size")
	flag.IntVar(&cfg.queueCap, "queue", 64, "async job queue depth before 429 backpressure")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "shutdown budget for in-flight requests and jobs")
	flag.BoolVar(&cfg.scrub, "scrub", false, "delete damaged job records and stale temp files from the job store at startup (requires -data)")
	flag.StringVar(&cfg.webhookSecret, "webhook-secret", "", "HMAC-SHA256 key for signing webhook callback deliveries")
	flag.BoolVar(&cfg.coordinator, "coordinator", false, "distribute durable jobs' explorations to fleet workers (requires -data)")
	flag.StringVar(&cfg.joinURL, "join", "", "run as a fleet worker against this coordinator base URL")
	flag.DurationVar(&cfg.leaseTTL, "fleet-lease-ttl", 10*time.Second, "coordinator: lease TTL before unheartbeated tasks are re-issued")
	flag.IntVar(&cfg.localSlots, "fleet-local-slots", 1, "coordinator: tasks the coordinator executes itself alongside the fleet")
	flag.Parse()

	srv, err := newServer(cfg)
	if err != nil {
		log.Fatalf("peakpowerd: %v", err)
	}
	if err := srv.jobs.recover(); err != nil {
		log.Fatalf("peakpowerd: recovering jobs: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	durable := "ephemeral"
	if cfg.dataDir != "" {
		durable = "data " + cfg.dataDir
	}
	log.Printf("peakpowerd: listening on %s (%d targets, cache %d, %s)",
		*addr, len(peakpower.Targets()), cfg.cacheSize, durable)
	if srv.fleet != nil {
		log.Printf("peakpowerd: fleet coordinator up (lease ttl %s, %d local slot(s))",
			cfg.leaseTTL, cfg.localSlots)
	}
	if cfg.joinURL != "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wk := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: strings.TrimRight(cfg.joinURL, "/"),
			ID:          host + *addr,
			Plan:        srv.planFor,
			Logf:        log.Printf,
		})
		go func() {
			if err := wk.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("peakpowerd: fleet worker stopped: %v", err)
			}
		}()
	}

	select {
	case err := <-errCh:
		log.Fatalf("peakpowerd: %v", err)
	case <-ctx.Done():
		log.Printf("peakpowerd: draining (budget %s)", *drainTimeout)
		deadline := time.Now().Add(*drainTimeout)
		srv.jobs.drain(*drainTimeout)
		shCtx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			log.Fatalf("peakpowerd: shutdown: %v", err)
		}
	}
}

// serverConfig is everything main's flags decide.
type serverConfig struct {
	cacheSize int
	timeout   time.Duration
	dataDir   string // "" = ephemeral
	workers   int
	queueCap  int

	scrub         bool
	webhookSecret string
	coordinator   bool
	joinURL       string
	leaseTTL      time.Duration
	localSlots    int
}

// server holds the shared analysis state: one lazily built Analyzer per
// registered target, one content-addressed report cache across all of
// them (disk-backed when -data is set), and the async job runner. All
// fields are safe for concurrent request handling.
type server struct {
	cache   *peakpower.Cache
	disk    *peakpower.DiskStore // nil when ephemeral
	jobs    *jobRunner
	timeout time.Duration
	fleet   *fleet.Coordinator // nil unless -coordinator

	webhookSecret string
	webhookClient *http.Client

	mu        sync.Mutex
	analyzers map[string]*analyzerEntry
}

// analyzerEntry builds one target's analyzer exactly once, outside the
// server mutex, so a cold target's netlist construction never stalls
// requests for targets that are already built.
type analyzerEntry struct {
	once sync.Once
	an   *peakpower.Analyzer
	err  error
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.timeout <= 0 {
		cfg.timeout = 2 * time.Minute
	}
	if cfg.coordinator && cfg.dataDir == "" {
		return nil, fmt.Errorf("-coordinator requires -data (the fleet distributes work through the job checkpoint journal)")
	}
	if cfg.scrub && cfg.dataDir == "" {
		return nil, fmt.Errorf("-scrub requires -data (there is no job store to scrub)")
	}
	s := &server{
		cache:         peakpower.NewCache(cfg.cacheSize),
		timeout:       cfg.timeout,
		analyzers:     make(map[string]*analyzerEntry),
		webhookSecret: cfg.webhookSecret,
		webhookClient: &http.Client{Timeout: 10 * time.Second},
	}
	var store *jobstore.Store
	if cfg.dataDir != "" {
		disk, err := peakpower.NewDiskStore(filepath.Join(cfg.dataDir, "reports"))
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.AttachDisk(disk)
		store, err = jobstore.Open(filepath.Join(cfg.dataDir, "jobs"), nil)
		if err != nil {
			return nil, err
		}
		if cfg.scrub {
			_, damaged, err := store.List()
			if err != nil {
				return nil, err
			}
			if err := store.Scrub(damaged); err != nil {
				return nil, fmt.Errorf("scrubbing job store: %w", err)
			}
			log.Printf("peakpowerd: scrub removed %d damaged job record(s): %v", len(damaged), damaged)
		}
	}
	if cfg.coordinator {
		s.fleet = fleet.NewCoordinator(fleet.CoordinatorConfig{
			LeaseTTL:   cfg.leaseTTL,
			LocalSlots: cfg.localSlots,
			Plan:       s.planFor,
			Logf:       log.Printf,
		})
	}
	s.jobs = newJobRunner(store, cfg.workers, cfg.queueCap, s.runJobAnalysis)
	s.jobs.notify = s.notifyWebhook
	registerMetrics(s)
	return s, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/targets", s.handleTargets)
	mux.HandleFunc("/v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJobStatus)
	mux.Handle("/debug/vars", expvar.Handler())
	if s.fleet != nil {
		s.fleet.Routes(mux)
	}
	return mux
}

// analyzer returns (building on first use) the shared Analyzer for a
// target. Only the map access holds the lock; the netlist build runs
// under the entry's once, per target. A failed build is retried on the
// next request (the entry is dropped) so a transient failure does not
// pin an error forever.
func (s *server) analyzer(ctx context.Context, target string) (*peakpower.Analyzer, error) {
	s.mu.Lock()
	e, ok := s.analyzers[target]
	if !ok {
		e = &analyzerEntry{}
		s.analyzers[target] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.an, e.err = peakpower.NewFor(ctx, target, peakpower.WithCache(s.cache))
	})
	if e.err != nil {
		s.mu.Lock()
		if s.analyzers[target] == e {
			delete(s.analyzers, target)
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e.an, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string               `json:"status"`
		Targets int                  `json:"targets"`
		Cache   peakpower.CacheStats `json:"cache"`
	}{"ok", len(peakpower.Targets()), s.cache.Stats()})
}

// handleReadyz reports whether the server should receive traffic, with
// enough detail for an operator to see why not: queue saturation,
// in-flight load, a degraded disk tier, or an in-progress drain (503).
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.jobs.stats()
	body := struct {
		Status string                    `json:"status"`
		Jobs   runnerStats               `json:"jobs"`
		Cache  peakpower.CacheStats      `json:"cache"`
		Disk   *peakpower.DiskStoreStats `json:"disk,omitempty"`
		Fleet  *fleet.Stats              `json:"fleet,omitempty"`
	}{Status: "ok", Jobs: st, Cache: s.cache.Stats()}
	if s.disk != nil {
		ds := s.disk.Stats()
		body.Disk = &ds
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		body.Fleet = &fs
	}
	status := http.StatusOK
	if st.Draining {
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *server) handleTargets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, peakpower.Targets())
}

func (s *server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	target := r.URL.Query().Get("target")
	if target == "" {
		target = peakpower.DefaultTarget
	}
	infos, err := peakpower.TargetBenchmarks(target)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, infos)
}

// analyzeRequest is the POST /v1/analyze and POST /v1/jobs body.
type analyzeRequest struct {
	Target  string         `json:"target,omitempty"`
	Bench   string         `json:"bench,omitempty"`
	Name    string         `json:"name,omitempty"`
	Source  string         `json:"source,omitempty"`
	Options analyzeOptions `json:"options"`
	// CallbackURL, on POST /v1/jobs, requests a webhook POST of the job's
	// terminal status (the GET /v1/jobs/{id} body) when it completes or
	// fails; signed with -webhook-secret when set. Ignored by /v1/analyze.
	CallbackURL string `json:"callback_url,omitempty"`
}

// analyzeOptions mirrors the peakpower functional options a client may
// override per request; zero values keep the target's defaults.
type analyzeOptions struct {
	MaxCycles int     `json:"max_cycles,omitempty"`
	MaxNodes  int     `json:"max_nodes,omitempty"`
	COI       int     `json:"coi,omitempty"`
	ClockHz   float64 `json:"clock_hz,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	// ExploreWorkers sets the parallel-exploration worker count. Results
	// are bit-identical at any value, so it is excluded from the cache
	// key: tune it freely for latency without fragmenting the cache.
	ExploreWorkers int `json:"explore_workers,omitempty"`
	// Interrupts attaches the peripheral bus with the given symbolic
	// arrival window; the zero-valued config selects the documented
	// defaults (set it to {} to enable interrupts with defaults).
	Interrupts *peakpower.InterruptConfig `json:"interrupts,omitempty"`
}

// decodeAnalyzeRequest reads and validates a request body shared by the
// synchronous and async endpoints, returning the raw bytes alongside (the
// job journal records the request verbatim).
func decodeAnalyzeRequest(w http.ResponseWriter, r *http.Request) (*analyzeRequest, json.RawMessage, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return nil, nil, fmt.Errorf("reading request: %w", err)
	}
	var req analyzeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, fmt.Errorf("decoding request: %w", err)
	}
	if (req.Bench == "") == (req.Source == "") {
		return nil, nil, fmt.Errorf(`exactly one of "bench" or "source" must be set`)
	}
	return &req, body, nil
}

// buildOpts translates wire options into peakpower functional options.
func buildOpts(o analyzeOptions) ([]peakpower.Option, error) {
	var opts []peakpower.Option
	if o.MaxCycles > 0 {
		opts = append(opts, peakpower.WithMaxCycles(o.MaxCycles))
	}
	if o.MaxNodes > 0 {
		opts = append(opts, peakpower.WithMaxNodes(o.MaxNodes))
	}
	if o.COI > 0 {
		opts = append(opts, peakpower.WithCOI(o.COI))
	}
	if o.ClockHz > 0 {
		opts = append(opts, peakpower.WithClockHz(o.ClockHz))
	}
	if o.ExploreWorkers > 0 {
		opts = append(opts, peakpower.WithExploreWorkers(o.ExploreWorkers))
	}
	if o.Engine != "" {
		eng, err := peakpower.ParseEngine(o.Engine)
		if err != nil {
			return nil, err
		}
		opts = append(opts, peakpower.WithEngine(eng))
	}
	if o.Interrupts != nil {
		opts = append(opts, peakpower.WithInterrupts(*o.Interrupts))
	}
	return opts, nil
}

// runAnalysis executes one validated request against the shared analyzers
// — the single analysis path behind both the synchronous endpoint and the
// job workers. extra options (e.g. a job's checkpoint) are appended after
// the request's own.
func (s *server) runAnalysis(ctx context.Context, req *analyzeRequest, extra ...peakpower.Option) (*peakpower.Result, error) {
	target := req.Target
	if target == "" {
		target = peakpower.DefaultTarget
	}
	timeout := s.timeout
	if ms := req.Options.TimeoutMS; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	an, err := s.analyzer(ctx, target)
	if err != nil {
		return nil, err
	}
	opts, err := buildOpts(req.Options)
	if err != nil {
		return nil, err
	}
	opts = append(opts, extra...)
	if req.Bench != "" {
		return an.AnalyzeBench(ctx, req.Bench, opts...)
	}
	name := req.Name
	if name == "" {
		name = "app"
	}
	return an.Analyze(ctx, name, req.Source, opts...)
}

// runJobAnalysis is the job workers' runFunc: re-decode the journaled
// request and run it with a per-job exploration checkpoint (when durable),
// so a job killed mid-exploration resumes instead of restarting. In
// coordinator mode the exploration itself is first driven through the
// fleet (filling that same checkpoint journal to completion), and the
// runAnalysis call below merely seals the Report from it.
func (s *server) runJobAnalysis(ctx context.Context, j *jobstore.Job) (json.RawMessage, error) {
	var req analyzeRequest
	if err := json.Unmarshal(j.Request, &req); err != nil {
		return nil, fmt.Errorf("decoding journaled request: %w", err)
	}
	var extra []peakpower.Option
	if s.jobs.store != nil {
		extra = append(extra, peakpower.WithCheckpoint(s.jobs.store.CheckpointPath(j.ID)))
	}
	if s.fleet != nil && s.jobs.store != nil {
		if err := s.runFleet(ctx, &req, j); err != nil {
			return nil, err
		}
	}
	res, err := s.runAnalysis(ctx, &req, extra...)
	if err != nil {
		return nil, err
	}
	return res.Report.MarshalJSON()
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	req, _, err := decodeAnalyzeRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := buildOpts(req.Options); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.runAnalysis(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	data, err := res.Report.MarshalJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleJobSubmit accepts an analysis job: 202 + the job ID and its poll
// URL. The request is validated up front (including options) so a job
// never fails on a malformed submission, only on the analysis itself. A
// full queue answers 429 + Retry-After immediately — intake never blocks
// behind the workers.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	req, raw, err := decodeAnalyzeRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := buildOpts(req.Options); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.CallbackURL != "" {
		if err := validateCallbackURL(req.CallbackURL); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	j, err := s.jobs.submit(raw)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		StatusURL string `json:"status_url"`
	}{j.ID, string(j.State), "/v1/jobs/" + j.ID})
}

// jobStatusResponse is the GET /v1/jobs/{id} body. Report is the sealed
// Report's canonical JSON once the job is done; Error the failure text
// once it has failed.
type jobStatusResponse struct {
	ID          string          `json:"id"`
	State       string          `json:"state"`
	Attempts    int             `json:"attempts,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
	Error       string          `json:"error,omitempty"`
}

func (s *server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
		return
	}
	j, err := s.jobs.get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	resp := jobStatusResponse{
		ID:          j.ID,
		State:       string(j.State),
		Attempts:    j.Attempts,
		SubmittedAt: j.SubmittedAt,
		Report:      j.Result,
		Error:       j.Error,
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		resp.FinishedAt = &t
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusFor classifies an analysis error into an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, peakpower.ErrUnknownTarget), errors.Is(err, peakpower.ErrUnknownBench):
		return http.StatusNotFound
	case errors.Is(err, peakpower.ErrAssemble),
		errors.Is(err, peakpower.ErrCycleBudget),
		errors.Is(err, peakpower.ErrNodeBudget):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
