package energy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/symx"
)

// mkNode builds a tree node with a constant-power trace.
func mkNode(id int, mw float64, cycles int) *symx.Node {
	trace := make([]float64, cycles)
	for i := range trace {
		trace[i] = mw
	}
	return &symx.Node{ID: id, Len: cycles, Data: trace, Kind: symx.KindEnd}
}

const clock = 100e6

// segE returns the energy (J) of a constant-power segment.
func segE(mw float64, cycles int) float64 {
	return mw * 1e-3 * float64(cycles) / clock
}

func emptyImage() *isa.Image {
	return &isa.Image{LoopBounds: map[uint16]int{}}
}

func TestStraightLine(t *testing.T) {
	root := mkNode(0, 2.0, 100)
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root}}
	res, err := PeakEnergy(tree, emptyImage(), clock)
	if err != nil {
		t.Fatal(err)
	}
	want := segE(2.0, 100)
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("E = %g, want %g", res.EnergyJ, want)
	}
	if res.Cycles != 100 {
		t.Fatalf("cycles = %v", res.Cycles)
	}
	if math.Abs(res.NPEJPerCycle-want/100) > 1e-18 {
		t.Fatalf("NPE = %g", res.NPEJPerCycle)
	}
}

func TestBranchTakesMax(t *testing.T) {
	root := mkNode(0, 1.0, 10)
	root.Kind = symx.KindBranch
	root.BranchPC = 0xF010
	hot := mkNode(1, 3.0, 20)  // 60 units
	cold := mkNode(2, 1.0, 50) // 50 units
	root.Taken = hot
	root.NotTaken = cold
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root, hot, cold}}
	res, err := PeakEnergy(tree, emptyImage(), clock)
	if err != nil {
		t.Fatal(err)
	}
	want := segE(1.0, 10) + segE(3.0, 20)
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("E = %g, want %g (must take the hot side)", res.EnergyJ, want)
	}
	if res.Cycles != 30 {
		t.Fatalf("cycles = %v, want 30 (the bounding path)", res.Cycles)
	}
}

func TestNestedBranches(t *testing.T) {
	root := mkNode(0, 1.0, 10)
	root.Kind = symx.KindBranch
	mid := mkNode(1, 1.0, 10)
	mid.Kind = symx.KindBranch
	leafA := mkNode(2, 1.0, 10)
	leafB := mkNode(3, 5.0, 10)
	other := mkNode(4, 2.0, 10)
	root.Taken = mid
	root.NotTaken = other
	mid.Taken = leafA
	mid.NotTaken = leafB
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root, mid, leafA, leafB, other}}
	res, err := PeakEnergy(tree, emptyImage(), clock)
	if err != nil {
		t.Fatal(err)
	}
	want := segE(1.0, 10) + segE(1.0, 10) + segE(5.0, 10)
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("E = %g, want %g", res.EnergyJ, want)
	}
}

func TestMergeLoopRequiresBound(t *testing.T) {
	// root(branch) --not-taken--> body(merge back to root)
	//             \--taken-----> exit(end)
	root := mkNode(0, 1.0, 10)
	root.Kind = symx.KindBranch
	root.BranchPC = 0xF020
	body := mkNode(1, 2.0, 10)
	body.Kind = symx.KindMerge
	body.BranchPC = 0xF020
	body.MergeTo = root
	exit := mkNode(2, 1.0, 5)
	root.NotTaken = body
	root.Taken = exit
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root, body, exit}}

	if _, err := PeakEnergy(tree, emptyImage(), clock); err == nil ||
		!strings.Contains(err.Error(), "loopbound") {
		t.Fatalf("expected loop-bound error, got %v", err)
	}

	img := emptyImage()
	img.LoopBounds[0xF020] = 4
	res, err := PeakEnergy(tree, img, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Loop SCC = {root, body}: one pass = 10@1mW + 10@2mW; 4 iterations,
	// plus the exit segment.
	want := 4*(segE(1.0, 10)+segE(2.0, 10)) + segE(1.0, 5)
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("E = %g, want %g", res.EnergyJ, want)
	}
	wantCycles := 4.0*20 + 5
	if res.Cycles != wantCycles {
		t.Fatalf("cycles = %v, want %v", res.Cycles, wantCycles)
	}
}

func TestMergeToSiblingIsNotALoop(t *testing.T) {
	// Diamond: both sides of a branch reach an identical second branch;
	// one side merges to the other's branch node. No cycle — no bound
	// needed.
	root := mkNode(0, 1.0, 10)
	root.Kind = symx.KindBranch
	b2 := mkNode(1, 1.0, 10)
	b2.Kind = symx.KindBranch
	m := mkNode(2, 4.0, 3)
	m.Kind = symx.KindMerge
	m.MergeTo = b2
	endA := mkNode(3, 1.0, 10)
	endB := mkNode(4, 2.0, 10)
	root.Taken = m
	root.NotTaken = b2
	b2.Taken = endA
	b2.NotTaken = endB
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root, b2, m, endA, endB}}
	res, err := PeakEnergy(tree, emptyImage(), clock)
	if err != nil {
		t.Fatal(err)
	}
	// Max path: root -> m -> b2 -> endB.
	want := segE(1.0, 10) + segE(4.0, 3) + segE(1.0, 10) + segE(2.0, 10)
	if math.Abs(res.EnergyJ-want) > 1e-15 {
		t.Fatalf("E = %g, want %g", res.EnergyJ, want)
	}
}

func TestBadPayload(t *testing.T) {
	root := &symx.Node{ID: 0, Len: 3, Data: "nope", Kind: symx.KindEnd}
	tree := &symx.Tree{Root: root, Nodes: []*symx.Node{root}}
	if _, err := PeakEnergy(tree, emptyImage(), clock); err == nil {
		t.Fatal("expected payload error")
	}
}

func TestEmptyTree(t *testing.T) {
	if _, err := PeakEnergy(&symx.Tree{}, emptyImage(), clock); err == nil {
		t.Fatal("expected error")
	}
}
