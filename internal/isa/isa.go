// Package isa defines the ULP430 instruction set — an MSP430-compatible
// 16-bit subset — together with its binary encoding, a decoder, an
// assembler, and a disassembler. The co-analysis consumes application
// *binaries* (Figure 3.1: "Design Binary"); this package produces and
// interprets them.
//
// Supported subset (word operations only):
//
//   - Format I (double operand): MOV ADD ADDC SUB SUBC CMP BIT BIC BIS XOR AND
//   - Format II (single operand): RRC RRA SWPB SXT PUSH CALL RETI
//   - Jumps: JNE JEQ JNC JC JN JGE JL JMP
//   - Addressing: Rn, x(Rn), @Rn, @Rn+, #imm, &abs, and the MSP430
//     constant generator (R3/R2 special cases)
//   - Emulated mnemonics: NOP POP RET BR CLR TST INC INCD DEC DECD INV
//     RLA RLC SETC CLRC EINT DINT
//
// Byte-mode (.B) operations and DADD are intentionally out of scope; the
// assembler rejects them. The benchmarks of Table 4.1 are written
// against this subset; the ISR benchmarks additionally use RETI and the
// GIE-manipulating EINT/DINT emulations.
package isa

import "fmt"

// Register names. R0..R3 have architectural roles.
const (
	// PC is the program counter (R0).
	PC = 0
	// SP is the stack pointer (R1).
	SP = 1
	// SR is the status register / constant generator 1 (R2).
	SR = 2
	// CG is constant generator 2 (R3).
	CG = 3
)

// Status-register flag bits.
const (
	// FlagC is the carry flag (bit 0).
	FlagC = 1 << 0
	// FlagZ is the zero flag (bit 1).
	FlagZ = 1 << 1
	// FlagN is the negative flag (bit 2).
	FlagN = 1 << 2
	// FlagV is the overflow flag (bit 8).
	FlagV = 1 << 8
	// FlagGIE is the global interrupt enable (bit 3): interrupt entry
	// clears it (after pushing SR) and RETI restores it.
	FlagGIE = 1 << 3
)

// Format distinguishes the three MSP430 encoding formats.
type Format uint8

// Instruction formats.
const (
	// FmtI is the double-operand format.
	FmtI Format = iota
	// FmtII is the single-operand format.
	FmtII
	// FmtJump is the conditional-jump format.
	FmtJump
	// FmtIllegal marks undecodable words.
	FmtIllegal
)

// Op is a decoded operation.
type Op uint8

// Format I operations (values are the opcode field).
const (
	MOV  Op = 0x4
	ADD  Op = 0x5
	ADDC Op = 0x6
	SUBC Op = 0x7
	SUB  Op = 0x8
	CMP  Op = 0x9
	BIT  Op = 0xB
	BIC  Op = 0xC
	BIS  Op = 0xD
	XOR  Op = 0xE
	AND  Op = 0xF
)

// Format II operations (16 + the 3-bit opcode field, to keep values
// distinct from Format I).
const (
	RRC  Op = 16 + 0
	SWPB Op = 16 + 1
	RRA  Op = 16 + 2
	SXT  Op = 16 + 3
	PUSH Op = 16 + 4
	CALL Op = 16 + 5
	RETI Op = 16 + 6
)

// Jump conditions (32 + the 3-bit condition field).
const (
	JNE Op = 32 + 0
	JEQ Op = 32 + 1
	JNC Op = 32 + 2
	JC  Op = 32 + 3
	JN  Op = 32 + 4
	JGE Op = 32 + 5
	JL  Op = 32 + 6
	JMP Op = 32 + 7
)

var opNames = map[Op]string{
	MOV: "MOV", ADD: "ADD", ADDC: "ADDC", SUBC: "SUBC", SUB: "SUB",
	CMP: "CMP", BIT: "BIT", BIC: "BIC", BIS: "BIS", XOR: "XOR", AND: "AND",
	RRC: "RRC", SWPB: "SWPB", RRA: "RRA", SXT: "SXT", PUSH: "PUSH", CALL: "CALL",
	RETI: "RETI",
	JNE:  "JNE", JEQ: "JEQ", JNC: "JNC", JC: "JC", JN: "JN", JGE: "JGE",
	JL: "JL", JMP: "JMP",
}

// String returns the canonical mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Addressing modes (the As field; Ad is 0 = AmReg or 1 = AmIndexed).
const (
	// AmReg is register direct (Rn).
	AmReg = 0
	// AmIndexed is indexed x(Rn); with Rn=SR it is absolute &addr.
	AmIndexed = 1
	// AmIndirect is register indirect @Rn.
	AmIndirect = 2
	// AmIndirectInc is indirect with post-increment @Rn+; with Rn=PC it
	// is immediate #imm.
	AmIndirectInc = 3
)

// Instr is one decoded instruction.
type Instr struct {
	// Format is the encoding format (FmtIllegal if undecodable).
	Format Format
	// Op is the operation.
	Op Op
	// Src and Dst are register fields (Format II uses Dst only).
	Src, Dst uint8
	// As is the source addressing mode; Ad the destination mode (0/1).
	As, Ad uint8
	// Off is the jump offset in words (sign-extended).
	Off int16
	// SrcExt and DstExt are the extension words, valid per HasSrcExt /
	// HasDstExt.
	SrcExt, DstExt uint16
	// HasSrcExt / HasDstExt report whether extension words are present.
	HasSrcExt, HasDstExt bool
}

// ConstGen resolves the MSP430 constant generator: for (reg, as)
// combinations that encode constants it returns (value, true).
func ConstGen(reg, as uint8) (uint16, bool) {
	switch reg {
	case CG:
		switch as {
		case AmReg:
			return 0, true
		case AmIndexed:
			return 1, true
		case AmIndirect:
			return 2, true
		case AmIndirectInc:
			return 0xFFFF, true
		}
	case SR:
		switch as {
		case AmIndirect:
			return 4, true
		case AmIndirectInc:
			return 8, true
		}
	}
	return 0, false
}

// SrcNeedsExt reports whether the source operand consumes an extension
// word: indexed/absolute (except the R3 constant) and immediate (@PC+).
func SrcNeedsExt(reg, as uint8) bool {
	if _, isConst := ConstGen(reg, as); isConst && !(reg == SR && as == AmIndexed) {
		return false
	}
	switch as {
	case AmIndexed:
		return true // x(Rn), &abs, symbolic
	case AmIndirectInc:
		return reg == PC // #imm
	}
	return false
}

// DstNeedsExt reports whether the destination operand consumes an
// extension word (any Ad=1 destination).
func DstNeedsExt(ad uint8) bool { return ad == 1 }

// SrcIsMem reports whether the source operand performs a data-memory read.
// Immediates and constant-generator values do not.
func SrcIsMem(reg, as uint8) bool {
	if _, isConst := ConstGen(reg, as); isConst {
		return false
	}
	switch as {
	case AmIndexed:
		return true
	case AmIndirect:
		return true
	case AmIndirectInc:
		return reg != PC
	}
	return false
}

// ReadsDst reports whether the operation consumes the old destination
// value (MOV does not; everything else in Format I does).
func ReadsDst(op Op) bool {
	return op != MOV
}

// WritesDst reports whether the operation writes the destination
// (CMP and BIT only set flags).
func WritesDst(op Op) bool {
	return op != CMP && op != BIT
}

// WritesFlags reports whether the operation updates the status flags.
func WritesFlags(op Op) bool {
	switch op {
	case MOV, BIC, BIS, SWPB, PUSH, CALL:
		return false
	case RETI:
		// RETI replaces the whole SR from the stack through its own
		// datapath, not the ALU flag-update path.
		return false
	}
	if op >= 32 { // jumps
		return false
	}
	return true
}

// Decode decodes the instruction word w. Extension words must be supplied
// afterwards via AttachExt (the decoder reports how many are needed).
func Decode(w uint16) Instr {
	switch {
	case w>>13 == 0b001: // jump
		off := int16(w & 0x3FF)
		if off&0x200 != 0 {
			off |= ^int16(0x3FF) // sign extend 10 bits
		}
		return Instr{Format: FmtJump, Op: 32 + Op((w>>10)&7), Off: off}
	case w>>10 == 0b000100: // Format II
		opc := Op(16 + (w>>7)&7)
		if opc > RETI { // reserved encoding: unsupported
			return Instr{Format: FmtIllegal}
		}
		if opc == RETI {
			if w&0x7F != 0 { // RETI has no operand; the As/Dst bits must be 0
				return Instr{Format: FmtIllegal}
			}
			return Instr{Format: FmtII, Op: RETI}
		}
		if w&(1<<6) != 0 { // byte mode unsupported
			return Instr{Format: FmtIllegal}
		}
		ins := Instr{
			Format: FmtII,
			Op:     opc,
			Dst:    uint8(w & 0xF),
			As:     uint8((w >> 4) & 3),
		}
		ins.HasSrcExt = SrcNeedsExt(ins.Dst, ins.As)
		return ins
	case w>>12 >= 0x4: // Format I
		op := Op(w >> 12)
		if op == 0xA { // DADD unsupported
			return Instr{Format: FmtIllegal}
		}
		if w&(1<<6) != 0 { // byte mode unsupported
			return Instr{Format: FmtIllegal}
		}
		ins := Instr{
			Format: FmtI,
			Op:     op,
			Src:    uint8((w >> 8) & 0xF),
			Ad:     uint8((w >> 7) & 1),
			As:     uint8((w >> 4) & 3),
			Dst:    uint8(w & 0xF),
		}
		ins.HasSrcExt = SrcNeedsExt(ins.Src, ins.As)
		ins.HasDstExt = DstNeedsExt(ins.Ad)
		return ins
	}
	return Instr{Format: FmtIllegal}
}

// NumExtWords returns how many extension words follow the instruction
// word (0..2).
func (i Instr) NumExtWords() int {
	n := 0
	if i.HasSrcExt {
		n++
	}
	if i.HasDstExt {
		n++
	}
	return n
}

// AttachExt fills in the extension words in program order (source first).
func (i *Instr) AttachExt(ws []uint16) error {
	if len(ws) != i.NumExtWords() {
		return fmt.Errorf("isa: %s needs %d extension words, got %d", i.Op, i.NumExtWords(), len(ws))
	}
	k := 0
	if i.HasSrcExt {
		i.SrcExt = ws[k]
		k++
	}
	if i.HasDstExt {
		i.DstExt = ws[k]
	}
	return nil
}

// Len returns the total instruction length in words.
func (i Instr) Len() int { return 1 + i.NumExtWords() }

// Encode produces the instruction word sequence (1-3 words).
func (i Instr) Encode() ([]uint16, error) {
	var w uint16
	switch i.Format {
	case FmtI:
		w = uint16(i.Op)<<12 | uint16(i.Src)<<8 | uint16(i.Ad)<<7 |
			uint16(i.As)<<4 | uint16(i.Dst)
	case FmtII:
		w = 0b000100<<10 | uint16(i.Op-16)<<7 | uint16(i.As)<<4 | uint16(i.Dst)
	case FmtJump:
		if i.Off < -512 || i.Off > 511 {
			return nil, fmt.Errorf("isa: jump offset %d out of range", i.Off)
		}
		w = 0b001<<13 | uint16(i.Op-32)<<10 | uint16(i.Off)&0x3FF
	default:
		return nil, fmt.Errorf("isa: cannot encode illegal instruction")
	}
	out := []uint16{w}
	if i.HasSrcExt {
		out = append(out, i.SrcExt)
	}
	if i.HasDstExt {
		out = append(out, i.DstExt)
	}
	return out, nil
}

// Cycles returns the number of clock cycles the ULP430 multi-cycle
// implementation spends on this instruction. The instruction-set
// simulator uses this model, and the gate-level cross-validation tests
// assert that the hardware matches it exactly.
func (i Instr) Cycles() int {
	switch i.Format {
	case FmtJump:
		return 2 // FETCH + EXEC
	case FmtI:
		c := 2 // FETCH + EXEC
		c += srcCycles(i.Src, i.As)
		if i.Ad == 1 {
			c++ // DOFF_RD
			if ReadsDst(i.Op) {
				c++ // DST_RD
			}
			if WritesDst(i.Op) {
				c++ // DST_WR
			}
		}
		return c
	case FmtII:
		c := 2 // FETCH + EXEC
		c += srcCycles(i.Dst, i.As)
		switch i.Op {
		case RETI:
			c += 2 // RETI1 (pop SR) + RETI2 (pop PC)
		case PUSH, CALL:
			c++ // DST_WR (stack push)
		default: // RRC RRA SWPB SXT write back to their operand
			if i.As != AmReg {
				c++ // DST_WR to memory operand
			}
		}
		return c
	}
	return 1
}

func srcCycles(reg, as uint8) int {
	if _, isConst := ConstGen(reg, as); isConst {
		return 0
	}
	switch as {
	case AmReg:
		return 0
	case AmIndexed:
		return 2 // SOFF_RD + SRC_RD
	case AmIndirect:
		return 1 // SRC_RD
	case AmIndirectInc:
		return 1 // SRC_RD, or SOFF_RD for #imm — both 1 cycle
	}
	return 0
}
