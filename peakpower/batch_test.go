package peakpower

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
)

// concurrencyBenches are four quick benchmarks with distinct workloads
// (multiplier-heavy, shift/XOR, input-dependent control flow).
var concurrencyBenches = []string{"mult", "tea8", "binSearch", "tHold"}

// TestAnalyzeAllConcurrent runs >=4 concurrent analyses through one
// shared Analyzer's worker pool and checks the results are identical to
// sequential analysis — the package's concurrency-safety contract,
// meaningful under -race.
func TestAnalyzeAllConcurrent(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()

	want := make(map[string]*Result)
	for _, name := range concurrencyBenches {
		r, err := a.AnalyzeBench(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = r
	}

	apps := make([]App, len(concurrencyBenches))
	for i, name := range concurrencyBenches {
		apps[i] = App{Bench: name}
	}
	results, err := a.AnalyzeAll(ctx, apps, WithWorkers(len(apps)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(apps) {
		t.Fatalf("got %d results for %d apps", len(results), len(apps))
	}
	for i, r := range results {
		w := want[concurrencyBenches[i]]
		if r == nil {
			t.Fatalf("missing result for %s", concurrencyBenches[i])
		}
		if r.PeakPowerMW != w.PeakPowerMW || r.PeakEnergyJ != w.PeakEnergyJ || r.Paths != w.Paths {
			t.Fatalf("%s: concurrent result (%.6f mW, %.6e J, %d paths) != sequential (%.6f mW, %.6e J, %d paths)",
				r.App, r.PeakPowerMW, r.PeakEnergyJ, r.Paths, w.PeakPowerMW, w.PeakEnergyJ, w.Paths)
		}
	}
}

// TestConcurrentAnalyzeGoroutines hammers one shared Analyzer from raw
// goroutines (no pool), two per benchmark, again checking determinism.
func TestConcurrentAnalyzeGoroutines(t *testing.T) {
	a := analyzer(t)
	ctx := context.Background()

	type out struct {
		name string
		res  *Result
		err  error
	}
	var wg sync.WaitGroup
	outs := make(chan out, 2*len(concurrencyBenches))
	for rep := 0; rep < 2; rep++ {
		for _, name := range concurrencyBenches {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				r, err := a.AnalyzeBench(ctx, name)
				outs <- out{name, r, err}
			}(name)
		}
	}
	wg.Wait()
	close(outs)

	peaks := make(map[string]float64)
	for o := range outs {
		if o.err != nil {
			t.Fatalf("%s: %v", o.name, o.err)
		}
		if prev, ok := peaks[o.name]; ok {
			if math.Abs(prev-o.res.PeakPowerMW) != 0 {
				t.Fatalf("%s: nondeterministic peak: %.9f vs %.9f", o.name, prev, o.res.PeakPowerMW)
			}
		} else {
			peaks[o.name] = o.res.PeakPowerMW
		}
	}
}

// TestAnalyzeAllPartialFailure checks result/error alignment when one
// app of a batch fails: good apps still produce results, and the joined
// error carries the failing app's sentinel class.
func TestAnalyzeAllPartialFailure(t *testing.T) {
	a := analyzer(t)
	results, err := a.AnalyzeAll(context.Background(), []App{
		{Bench: "mult"},
		{Bench: "nosuchbench"},
		{Name: "inline", Source: "definitely not assembly"},
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	if !errors.Is(err, ErrUnknownBench) || !errors.Is(err, ErrAssemble) {
		t.Fatalf("joined error must carry both sentinel classes: %v", err)
	}
	if results[0] == nil || results[0].App != "mult" {
		t.Fatalf("good app lost its result: %+v", results[0])
	}
	if results[1] != nil || results[2] != nil {
		t.Fatal("failed apps must have nil results")
	}
}

// TestAnalyzeAllCanceled checks that canceling the batch context stops
// feeding work and surfaces the context error.
func TestAnalyzeAllCanceled(t *testing.T) {
	a := analyzer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	apps := []App{{Bench: "mult"}, {Bench: "tea8"}, {Bench: "binSearch"}, {Bench: "tHold"}}
	results, err := a.AnalyzeAll(ctx, apps, WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("app %d produced a result under a pre-canceled context", i)
		}
	}
}

// TestAnalyzeAllEmptyApp checks the App validation error.
func TestAnalyzeAllEmptyApp(t *testing.T) {
	a := analyzer(t)
	_, err := a.AnalyzeAll(context.Background(), []App{{}})
	if err == nil {
		t.Fatal("empty App must error")
	}
	_, err = a.AnalyzeAll(context.Background(), []App{{Source: "mov #1, r4"}})
	if !errors.Is(err, ErrAssemble) {
		t.Fatalf("Source without Name must classify as ErrAssemble: %v", err)
	}
}
