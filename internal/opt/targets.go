package opt

import (
	"repro/internal/cell"
	"repro/internal/ulp430"
)

// GatedTarget returns the power-gated ULP430 design point — the design-side
// counterpart of this package's software transforms. The COI attribution
// identifies which modules drive the peaks (the multiplier array above all);
// Section 5's optimization discussion gates the idle ones behind sleep
// transistors. The variant models the gated core as a scaled library:
// leakage collapses to 0.35x (sleep transistors cut the idle-module leakage
// floor) at a 1.03x per-transition energy overhead for the gating network.
//
// It satisfies peakpower.Target (structurally), so sweeping
// "ulp430" vs "ulp430-gated" quantifies what gating buys for the Type 1-3
// system sizing of package sizing.
func GatedTarget() *ulp430.DesignVariant {
	lib := cell.ULP65().Scaled(1.03, 0.35)
	lib.Name = "ULP65-pg"
	return ulp430.NewDesignVariant("ulp430-gated",
		"power-gated ULP430: sleep-transistor gating of idle modules (0.35x leakage, 1.03x transition energy) @ 100 MHz",
		lib, 100e6)
}
