// Differential fuzzing of the two gate engines on interrupt-bearing
// systems: the bus-attached peripherals (timer, ADC) inject stimulus the
// random-netlist fuzz in diff_test.go never exercises — vectored entry
// sequences, RETI unwinds, and X-valued interrupt request lines during
// symbolic arrival windows. An external test package because ulp430 and
// symx sit above gsim in the import graph.
package gsim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cell"
	"repro/internal/gsim"
	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/periph"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

var (
	irqCPUOnce sync.Once
	irqCPUNet  *netlist.Netlist
)

func irqCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	irqCPUOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			t.Fatalf("BuildCPU: %v", err)
		}
		irqCPUNet = n
	})
	return irqCPUNet
}

// concreteIRQProg parameterizes a timer-interrupt program: arm the timer
// with a random compare value, optionally start an ADC conversion, spin
// until the handlers have run, halt.
func concreteIRQProg(taccr int, adc bool) string {
	start := ""
	want := 1
	if adc {
		start = "    mov #3, &0x0150       ; start an ADC conversion\n"
		want = 2
	}
	return fmt.Sprintf(`
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    clr r10
    mov #%d, &0x0144
    mov #3, &0x0140
%s    eint
wait:
    cmp #%d, r10
    jnz wait
    dint
    mov #1, &0x0126
spin: jmp spin
timer_isr:
    inc r10
    reti
adc_isr:
    mov &0x0154, r11
    inc r10
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`, taccr, start, want)
}

// symbolicIRQProg idles on a flag only the ADC handler sets, so a
// symbolic arrival window forks the exploration at every interruptible
// boundary in the window.
const symbolicIRQProg = `
.org 0xf000
.entry main
main:
    mov #0x0A00, r1
    mov #0x0080, &0x0120
    clr r10
    mov #3, &0x0150       ; start an ADC conversion
    eint
idle:
    tst r10
    jz  idle
    dint
    mov #1, &0x0126
spin: jmp spin
timer_isr:
    reti
adc_isr:
    mov &0x0154, r11
    mov #1, r10
    reti
.org 0xfff8
.word timer_isr
.word adc_isr
`

// TestEnginesAgreeOnInterruptRuns steps scalar and packed systems in
// lockstep through random concrete interrupt schedules — random timer
// compare values, random ADC windows and delivery latencies — and
// requires identical state hashes and dynamic energy every cycle,
// including across snapshot/restore rewinds through ISR entry sequences.
func TestEnginesAgreeOnInterruptRuns(t *testing.T) {
	runs := 12
	if testing.Short() {
		runs = 4
	}
	for d := 0; d < runs; d++ {
		r := rand.New(rand.NewSource(int64(7_777_7 * (d + 1))))
		taccr := 5 + r.Intn(40)
		adc := r.Intn(2) == 0
		minLat := 1 + r.Intn(20)
		cfg := periph.Config{
			MinLatency:      minLat,
			MaxLatency:      minLat + r.Intn(12),
			ConcreteLatency: minLat + r.Intn(12),
		}
		img, err := isa.Assemble("irqfuzz", concreteIRQProg(taccr, adc))
		if err != nil {
			t.Fatal(err)
		}
		newSys := func(e gsim.Engine) *ulp430.System {
			sys, err := ulp430.NewSystemEngine(e, irqCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			sys.EnableInterrupts(cfg)
			sys.Reset()
			return sys
		}
		scalar := newSys(gsim.EngineScalar)
		packed := newSys(gsim.EnginePacked)

		var snapS, snapP *ulp430.SysSnapshot
		for c := 0; c < 3000 && !scalar.Halted(); c++ {
			scalar.Step()
			packed.Step()
			if err := scalar.Err(); err != nil {
				t.Fatalf("run %d cycle %d: scalar: %v", d, c, err)
			}
			if err := packed.Err(); err != nil {
				t.Fatalf("run %d cycle %d: packed: %v", d, c, err)
			}
			if sh, ph := scalar.StateHash(), packed.StateHash(); sh != ph {
				t.Fatalf("run %d cycle %d: state hash diverged: %x vs %x", d, c, sh, ph)
			}
			if se, pe := scalar.Sim.DynamicEnergyFJ(), packed.Sim.DynamicEnergyFJ(); se != pe {
				t.Fatalf("run %d cycle %d: dynamic energy diverged: %v vs %v", d, c, se, pe)
			}
			switch {
			case snapS == nil && r.Intn(40) == 0:
				snapS, snapP = scalar.Snapshot(), packed.Snapshot()
			case snapS != nil && r.Intn(50) == 0:
				scalar.Restore(snapS)
				packed.Restore(snapP)
				if sh, ph := scalar.StateHash(), packed.StateHash(); sh != ph {
					t.Fatalf("run %d: state hash diverged after restore: %x vs %x", d, sh, ph)
				}
				snapS, snapP = nil, nil
			}
		}
		if !scalar.Halted() || !packed.Halted() {
			t.Fatalf("run %d: halted scalar=%v packed=%v", d, scalar.Halted(), packed.Halted())
		}
	}
}

// pcSink records the PC stream — enough payload to make tree comparison
// meaningful without depending on the power model.
type pcSink struct{ pcs []uint16 }

func (c *pcSink) OnCycle(sys *ulp430.System) { pc, _ := sys.PC(); c.pcs = append(c.pcs, pc) }
func (c *pcSink) Pos() int                   { return len(c.pcs) }
func (c *pcSink) Rewind(pos int)             { c.pcs = c.pcs[:pos] }
func (c *pcSink) Segment(from int) interface{} {
	return append([]uint16(nil), c.pcs[from:]...)
}

// TestEnginesAgreeOnSymbolicIRQExploration runs full symbolic
// exploration — X-valued interrupt request lines forking over random
// arrival windows — on both engines and requires identical trees:
// same node count, wiring, kinds, IRQ fork flags, and PC payloads.
func TestEnginesAgreeOnSymbolicIRQExploration(t *testing.T) {
	if testing.Short() {
		t.Skip("scalar engine is slow; skipping in -short")
	}
	r := rand.New(rand.NewSource(424242))
	windows := 3
	for d := 0; d < windows; d++ {
		minLat := 2 + r.Intn(12)
		cfg := periph.Config{MinLatency: minLat, MaxLatency: minLat + 1 + r.Intn(10)}
		img, err := isa.Assemble("irqfuzz", symbolicIRQProg)
		if err != nil {
			t.Fatal(err)
		}
		explore := func(e gsim.Engine) *symx.Tree {
			sys, err := ulp430.NewSystemEngine(e, irqCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			sys.EnableInterrupts(cfg)
			tree, err := symx.Explore(sys, &pcSink{}, symx.Options{})
			if err != nil {
				t.Fatalf("engine %v window [%d,%d]: %v", e, cfg.MinLatency, cfg.MaxLatency, err)
			}
			return tree
		}
		st := explore(gsim.EngineScalar)
		pt := explore(gsim.EnginePacked)
		if len(st.Nodes) != len(pt.Nodes) || st.Paths != pt.Paths || st.Cycles != pt.Cycles ||
			st.IRQForks() != pt.IRQForks() {
			t.Fatalf("window [%d,%d]: trees differ: nodes %d/%d paths %d/%d cycles %d/%d irqForks %d/%d",
				cfg.MinLatency, cfg.MaxLatency, len(st.Nodes), len(pt.Nodes),
				st.Paths, pt.Paths, st.Cycles, pt.Cycles, st.IRQForks(), pt.IRQForks())
		}
		for i := range st.Nodes {
			sn, pn := st.Nodes[i], pt.Nodes[i]
			if sn.Kind != pn.Kind || sn.Len != pn.Len || sn.IRQ != pn.IRQ || sn.BranchPC != pn.BranchPC {
				t.Fatalf("window [%d,%d] node %d differs: {%v len %d irq %v pc %#x} vs {%v len %d irq %v pc %#x}",
					cfg.MinLatency, cfg.MaxLatency, i,
					sn.Kind, sn.Len, sn.IRQ, sn.BranchPC, pn.Kind, pn.Len, pn.IRQ, pn.BranchPC)
			}
			spcs, _ := sn.Data.([]uint16)
			ppcs, _ := pn.Data.([]uint16)
			if len(spcs) != len(ppcs) {
				t.Fatalf("window [%d,%d] node %d payload length differs", cfg.MinLatency, cfg.MaxLatency, i)
			}
			for j := range spcs {
				if spcs[j] != ppcs[j] {
					t.Fatalf("window [%d,%d] node %d cycle %d: PC %#x vs %#x",
						cfg.MinLatency, cfg.MaxLatency, i, j, spcs[j], ppcs[j])
				}
			}
		}
	}
}
