// Optimize: use the co-analysis tool's cycle-of-interest attribution to
// guide the OPT1-3 peak-power software optimizations (Section 5.1),
// verify them, and measure the improvement.
//
//	go run ./examples/optimize
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/opt"
	"repro/internal/symx"
)

func main() {
	b := bench.ByName("mult")
	img, err := b.Image()
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := core.NewAnalyzer()
	if err != nil {
		log.Fatal(err)
	}

	before, err := analyzer.Analyze(img, symx.Options{MaxCycles: b.MaxCycles})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: peak %.3f mW\n", before.PeakPowerMW)
	fmt.Println("cycles of interest:")
	for _, pk := range before.COIs[:3] {
		fmt.Printf("  cycle %-5d %.3f mW during %-6s — top module: %s\n",
			pk.PathPos, pk.PowerMW, isa.Mnemonic(img, pk.FetchAddr), topModule(before.Modules, pk.ByModuleMW))
	}

	// The attribution points at multiplier overlap: apply the transforms.
	newSrc, counts := opt.ApplyAll(b.Source)
	fmt.Printf("\napplied: OPT1=%d OPT2=%d OPT3=%d sites\n",
		counts["OPT1"], counts["OPT2"], counts["OPT3"])
	if err := opt.VerifyEquivalent(b, newSrc, 6, 1); err != nil {
		log.Fatalf("optimization broke the program: %v", err)
	}
	fmt.Println("differential verification: PASS (same outputs on 6 input sets)")

	optImg, err := isa.Assemble("mult-opt", newSrc)
	if err != nil {
		log.Fatal(err)
	}
	after, err := analyzer.Analyze(optImg, symx.Options{MaxCycles: 2 * b.MaxCycles})
	if err != nil {
		log.Fatal(err)
	}
	ov, err := opt.MeasureOverhead(b, newSrc, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter:  peak %.3f mW (%.2f%% lower), %.2f%% slower, energy %+.2f%%\n",
		after.PeakPowerMW,
		100*(1-after.PeakPowerMW/before.PeakPowerMW),
		ov.PerfDegradationPct,
		100*(after.PeakEnergyJ/before.PeakEnergyJ-1))
}

func topModule(names []string, mw []float64) string {
	best, idx := 0.0, 0
	for i, v := range mw {
		if v > best {
			best, idx = v, i
		}
	}
	return names[idx]
}
