package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/symx"
)

var testAnalyzer *Analyzer

func analyzer(t *testing.T) *Analyzer {
	t.Helper()
	if testAnalyzer == nil {
		a, err := NewAnalyzer()
		if err != nil {
			t.Fatal(err)
		}
		testAnalyzer = a
	}
	return testAnalyzer
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a := analyzer(t)
	b := bench.ByName("binSearch")
	img, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	req, err := a.Analyze(img, symx.Options{MaxCycles: b.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	if req.PeakPowerMW <= 0 || req.PeakEnergyJ <= 0 || req.NPEJPerCycle <= 0 {
		t.Fatalf("requirements: %+v", req)
	}
	if req.Paths < 2 {
		t.Fatalf("binSearch must fork: %d paths", req.Paths)
	}
	if len(req.PeakTrace) == 0 {
		t.Fatal("missing peak trace")
	}
	// Past the measurement warmup, the trace's maximum cannot exceed the
	// global peak (the greedy path need not contain the peak cycle, but
	// never exceeds it; the first cycles hold the reset transient, which
	// peak reporting deliberately skips).
	for c, p := range req.PeakTrace {
		if c >= power.DefaultWarmup && p > req.PeakPowerMW+1e-9 {
			t.Fatalf("cycle %d: trace %.3f exceeds reported peak %.3f", c, p, req.PeakPowerMW)
		}
	}
	if len(req.COIs) == 0 || req.COIs[0].PowerMW != req.PeakPowerMW {
		t.Fatal("COIs inconsistent with peak")
	}
	if len(req.Modules) == 0 || len(req.UnionActive) != a.Netlist.NumCells() {
		t.Fatal("attribution metadata missing")
	}
	// NPE consistency.
	if got := req.PeakEnergyJ / req.BoundingCycles; got != req.NPEJPerCycle {
		t.Fatalf("NPE %.3e != E/cycles %.3e", req.NPEJPerCycle, got)
	}
}

func TestRunConcreteBoundedByAnalyze(t *testing.T) {
	a := analyzer(t)
	b := bench.ByName("tea8")
	img, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	req, err := a.Analyze(img, symx.Options{MaxCycles: b.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	run, err := a.RunConcrete(img, []uint16{0xDEAD, 0xBEEF}, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if run.PeakMW > req.PeakPowerMW {
		t.Fatalf("concrete peak %.3f exceeds bound %.3f", run.PeakMW, req.PeakPowerMW)
	}
	if run.EnergyJ > req.PeakEnergyJ {
		t.Fatalf("concrete energy exceeds bound")
	}
	if run.NPEJPerCycle <= 0 || len(run.Trace) == 0 {
		t.Fatalf("run: %+v", run)
	}
}

func TestActiveByModule(t *testing.T) {
	a := analyzer(t)
	b := bench.ByName("mult")
	img, _ := b.Image()
	req, err := a.Analyze(img, symx.Options{MaxCycles: b.MaxCycles})
	if err != nil {
		t.Fatal(err)
	}
	by := a.ActiveByModule(req.UnionActive)
	if by["multiplier"] == 0 || by["exec_unit"] == 0 {
		t.Fatalf("module grouping: %v", by)
	}
	byCells := a.ActiveCellsByModule(req.Best.ActiveCells)
	total := 0
	for _, n := range byCells {
		total += n
	}
	if total != len(req.Best.ActiveCells) {
		t.Fatal("cell grouping lost cells")
	}
}

func TestAnalyzeErrorPropagation(t *testing.T) {
	a := analyzer(t)
	// A program with an input-dependent computed branch target must be
	// rejected with a diagnosis, not silence.
	img, err := isa.Assemble("computed-branch", `
.org 0x0200
v: .input 1
.org 0xf000
.entry main
main:
    mov &v, r4
    br r4
    mov #1, &0x0126
spin: jmp spin
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(img, symx.Options{MaxCycles: 10000}); err == nil {
		t.Fatal("expected analysis error")
	}
}

func TestCombineMultiProgrammed(t *testing.T) {
	a := analyzer(t)
	var reqs []*Requirements
	for _, name := range []string{"tea8", "mult"} {
		b := bench.ByName(name)
		img, _ := b.Image()
		r, err := a.Analyze(img, symx.Options{MaxCycles: b.MaxCycles})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
	}
	comb, err := CombineMultiProgrammed(reqs...)
	if err != nil {
		t.Fatal(err)
	}
	// The combined requirement dominates each application's.
	for i, r := range reqs {
		if comb.PeakPowerMW < r.PeakPowerMW || comb.PeakEnergyJ < r.PeakEnergyJ {
			t.Fatalf("combined bound below application %d", i)
		}
		for ci, act := range r.UnionActive {
			if act && !comb.UnionActive[ci] {
				t.Fatal("union lost an active cell")
			}
		}
	}
	// mult's multiplier activity must dominate the union peak.
	if comb.PeakPowerMW != reqs[1].PeakPowerMW {
		t.Fatalf("union peak %.3f, want mult's %.3f", comb.PeakPowerMW, reqs[1].PeakPowerMW)
	}
	if _, err := CombineMultiProgrammed(); err == nil {
		t.Fatal("empty combine must error")
	}
}
