package gsim

import (
	"repro/internal/cell"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// stepScalar is the reference engine's cycle: one cell.Eval per gate in
// one flat topological pass, then the per-gate activity rules. It is
// deliberately simple — the packed engine is differentially tested
// against it.
func (s *Simulator) stepScalar() {
	copy(s.prev, s.vals)
	s.inStep = true

	// 0. Staged input assignments become the new cycle's input values.
	for _, si := range s.staged {
		s.vals[si.id] = si.v
	}
	s.staged = s.staged[:0]

	// 1. Clock edge: flip-flops capture next state computed from the
	// previous cycle's settled values.
	for i, ci := range s.seq {
		c := s.n.Cell(ci)
		var a, b, cc logic.Trit
		a = s.prev[c.In[0]]
		if c.In[1] >= 0 {
			b = s.prev[c.In[1]]
		}
		if c.In[2] >= 0 {
			cc = s.prev[c.In[2]]
		}
		s.seqNx[i] = cell.Eval(c.Kind, a, b, cc, s.prev[c.Out])
	}
	for i, ci := range s.seq {
		s.vals[s.n.Cell(ci).Out] = s.seqNx[i]
	}

	// 2. External bus observes registered outputs and drives read data.
	if s.bus != nil {
		s.bus.Tick(s)
	}

	// 3. Combinational settling in topological order.
	for _, ci := range s.order {
		c := s.n.Cell(ci)
		var a, b, cc logic.Trit
		if c.In[0] >= 0 {
			a = s.vals[c.In[0]]
		}
		if c.In[1] >= 0 {
			b = s.vals[c.In[1]]
		}
		if c.In[2] >= 0 {
			cc = s.vals[c.In[2]]
		}
		s.vals[c.Out] = cell.Eval(c.Kind, a, b, cc, 0)
	}

	// 4. Activity: toggled, or X driven by an active gate (the paper's
	// Section 3.1 rule). Primary inputs are active when they changed or
	// are X (inputs are the unconstrained signals the analysis
	// abstracts). Flip-flop outputs changed at the clock edge as a
	// function of last cycle's inputs, so their X-activity derives from
	// last cycle's activity flags; combinational gates settle within the
	// cycle and use current flags in topological order.
	copy(s.prevAct, s.active)
	for _, ci := range s.seq {
		c := s.n.Cell(ci)
		out := c.Out
		if s.prev[out] != s.vals[out] {
			s.active[out] = true
			continue
		}
		act := false
		if s.vals[out] == logic.X && s.seqCanCapture(c) {
			for pin := 0; pin < c.Kind.NumInputs(); pin++ {
				if s.prevAct[c.In[pin]] {
					act = true
					break
				}
			}
		}
		s.active[out] = act
	}
	for _, id := range s.n.Inputs() {
		s.active[id] = s.prev[id] != s.vals[id] || s.vals[id] == logic.X
	}
	for _, ci := range s.order {
		c := s.n.Cell(ci)
		out := c.Out
		if s.prev[out] != s.vals[out] {
			s.active[out] = true
			continue
		}
		act := false
		if s.vals[out] == logic.X {
			for pin := 0; pin < c.Kind.NumInputs(); pin++ {
				if s.active[c.In[pin]] {
					act = true
					break
				}
			}
		}
		s.active[out] = act
	}

	s.inStep = false
}

// seqCanCapture reports whether a flip-flop could have captured a new
// value at the edge that began this cycle. A Dffre whose enable was a
// known 0 (with reset known inactive) held its state in *every* concrete
// refinement, so an unchanged-X output cannot have toggled — this keeps
// idle X-holding register banks (e.g. the multiplier operands) from being
// conservatively marked active via their data-pin cones.
func (s *Simulator) seqCanCapture(c *netlist.Cell) bool {
	if c.Kind != cell.Dffre {
		return true
	}
	rst := s.prev[c.In[1]]
	en := s.prev[c.In[2]]
	return !(en == logic.L && rst == logic.L)
}
