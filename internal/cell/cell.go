// Package cell defines the synthetic "ULP65" standard-cell library the
// gate-level processor is built from: the set of primitive cells, their
// three-valued evaluation functions, and their power characterization
// (per-transition rise/fall energy, clock-pin energy, leakage, area).
//
// The paper synthesizes openMSP430 into TSMC 65GP cells and performs
// activity-based power analysis with Synopsys PrimeTime; this library is
// the from-scratch substitute. Absolute numbers are synthetic but the
// relative magnitudes are realistic for a 65 nm LP process: XOR-class
// cells cost more per transition than NAND-class cells, rise and fall
// energies differ, and flip-flop clock pins dissipate every cycle even
// when data is stable — the effect that produces the power floor visible
// in the paper's per-cycle traces (Figure 3.3).
package cell

import (
	"fmt"

	"repro/internal/logic"
)

// Kind identifies a primitive cell type.
type Kind uint8

// The cell set. Combinational cells are evaluated in topological order
// each cycle; DFF variants are the only sequential elements.
const (
	// Tie0 drives constant 0 (no inputs).
	Tie0 Kind = iota
	// Tie1 drives constant 1 (no inputs).
	Tie1
	// Inv is an inverter.
	Inv
	// Buf is a non-inverting buffer (also used for clock-tree buffers).
	Buf
	// Nand2 is a 2-input NAND.
	Nand2
	// Nor2 is a 2-input NOR.
	Nor2
	// And2 is a 2-input AND.
	And2
	// Or2 is a 2-input OR.
	Or2
	// Xor2 is a 2-input XOR.
	Xor2
	// Xnor2 is a 2-input XNOR.
	Xnor2
	// Mux2 is a 2:1 mux: inputs are (S, D0, D1); output D0 when S=0.
	Mux2
	// Dff is a rising-edge D flip-flop: input (D).
	Dff
	// Dffr is a DFF with synchronous active-high reset: inputs (D, RST).
	Dffr
	// Dffre is a DFF with synchronous reset and enable: inputs (D, RST, EN).
	// When EN=0 the state is held.
	Dffre
	numKinds
)

// NumKinds is the number of distinct cell kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	Tie0: "TIE0", Tie1: "TIE1", Inv: "INV", Buf: "BUF",
	Nand2: "NAND2", Nor2: "NOR2", And2: "AND2", Or2: "OR2",
	Xor2: "XOR2", Xnor2: "XNOR2", Mux2: "MUX2",
	Dff: "DFF", Dffr: "DFFR", Dffre: "DFFRE",
}

// String returns the library cell name, e.g. "NAND2".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindByName resolves a library cell name; it is the inverse of String.
func KindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("cell: unknown cell name %q", name)
}

// NumInputs returns the number of input pins of k (excluding the implicit
// clock pin of DFF variants).
func (k Kind) NumInputs() int {
	switch k {
	case Tie0, Tie1:
		return 0
	case Inv, Buf, Dff:
		return 1
	case Nand2, Nor2, And2, Or2, Xor2, Xnor2, Dffr:
		return 2
	case Mux2, Dffre:
		return 3
	}
	panic("cell: NumInputs on invalid kind")
}

// Sequential reports whether k is a flip-flop variant.
func (k Kind) Sequential() bool { return k == Dff || k == Dffr || k == Dffre }

// Eval computes the three-valued output of a combinational cell. For DFF
// variants it computes the *next-state* function (what Q becomes at the
// next rising edge), given (D[, RST[, EN]]) and the current state q.
// Combinational kinds ignore q.
func Eval(k Kind, a, b, c, q logic.Trit) logic.Trit {
	switch k {
	case Tie0:
		return logic.L
	case Tie1:
		return logic.H
	case Inv:
		return logic.Not(a)
	case Buf:
		return a
	case Nand2:
		return logic.Nand(a, b)
	case Nor2:
		return logic.Nor(a, b)
	case And2:
		return logic.And(a, b)
	case Or2:
		return logic.Or(a, b)
	case Xor2:
		return logic.Xor(a, b)
	case Xnor2:
		return logic.Xnor(a, b)
	case Mux2:
		return logic.Mux(a, b, c)
	case Dff:
		return a
	case Dffr:
		// b = RST (sync, active high)
		switch b {
		case logic.H:
			return logic.L
		case logic.L:
			return a
		}
		if a == logic.L {
			return logic.L // reset or not, next state is 0
		}
		return logic.X
	case Dffre:
		// b = RST, c = EN
		switch b {
		case logic.H:
			return logic.L
		case logic.X:
			next := logic.Mux(c, q, a)
			if next == logic.L {
				return logic.L
			}
			return logic.X
		}
		return logic.Mux(c, q, a)
	}
	panic("cell: Eval on invalid kind")
}

// Params is the power/area characterization of one cell kind.
type Params struct {
	// EnergyRise is the internal+switching energy, in femtojoules, of an
	// output 0->1 transition.
	EnergyRise float64
	// EnergyFall is the energy, in femtojoules, of an output 1->0
	// transition. Asymmetric with EnergyRise, as in real libraries.
	EnergyFall float64
	// EnergyClk is the energy, in femtojoules, dissipated per clock cycle
	// by the cell's clock pin and internal clock network, independent of
	// data activity. Zero for combinational cells.
	EnergyClk float64
	// LeakageNW is the leakage power in nanowatts.
	LeakageNW float64
	// AreaUM2 is the cell area in square micrometers.
	AreaUM2 float64
}

// MaxEnergy returns the larger of the rise and fall transition energies.
func (p Params) MaxEnergy() float64 {
	if p.EnergyRise >= p.EnergyFall {
		return p.EnergyRise
	}
	return p.EnergyFall
}

// Library is a characterized standard-cell library.
type Library struct {
	// Name identifies the library (e.g. "ULP65").
	Name string
	// FeatureNM is the process feature size in nanometers.
	FeatureNM int
	params    [NumKinds]Params
}

// Params returns the characterization of kind k.
func (l *Library) Params(k Kind) Params { return l.params[k] }

// MaxTransition returns the (first, second) output values of the
// maximum-power transition of cell kind k, and that transition's energy in
// femtojoules. This is the standard-cell-library lookup of Algorithm 2
// line 7: when a gate's value is X in two consecutive cycles, the peak
// power bound assigns the transition that dissipates the most.
func (l *Library) MaxTransition(k Kind) (first, second logic.Trit, energyFJ float64) {
	p := l.params[k]
	if p.EnergyRise >= p.EnergyFall {
		return logic.L, logic.H, p.EnergyRise
	}
	return logic.H, logic.L, p.EnergyFall
}

// TransitionEnergy returns the energy in femtojoules of an output
// transition from prev to cur; zero if prev == cur or either is X.
func (l *Library) TransitionEnergy(k Kind, prev, cur logic.Trit) float64 {
	if prev == cur || prev == logic.X || cur == logic.X {
		return 0
	}
	if cur == logic.H {
		return l.params[k].EnergyRise
	}
	return l.params[k].EnergyFall
}

// ULP65 returns the synthetic 65 nm low-power library used for the
// openMSP430-class experiments (1 V, 100 MHz operating point in the
// paper's methodology).
func ULP65() *Library {
	l := &Library{Name: "ULP65", FeatureNM: 65}
	// Calibrated so a ~6k-cell ULP core at 1 V / 100 MHz lands in the
	// paper's measured range (peak ~2 mW, idle floor ~1 mW; Figure 4.1):
	// DFF clock pins dominate the floor, datapath transitions the peaks.
	l.params = [NumKinds]Params{
		Tie0:  {0, 0, 0, 0.05, 0.7},
		Tie1:  {0, 0, 0, 0.05, 0.7},
		Inv:   {4.4, 3.8, 0, 0.35, 1.1},
		Buf:   {6.2, 5.6, 0, 0.45, 1.4},
		Nand2: {6.6, 5.8, 0, 0.55, 1.8},
		Nor2:  {7.2, 6.2, 0, 0.55, 1.8},
		And2:  {8.2, 7.4, 0, 0.70, 2.2},
		Or2:   {8.6, 7.6, 0, 0.70, 2.2},
		Xor2:  {12.4, 11.6, 0, 0.95, 3.2},
		Xnor2: {12.2, 11.4, 0, 0.95, 3.2},
		Mux2:  {13.0, 12.2, 0, 1.05, 3.6},
		Dff:   {31.2, 28.8, 17.5, 2.6, 7.1},
		Dffr:  {32.8, 30.4, 18.0, 2.8, 8.0},
		Dffre: {35.6, 33.2, 18.5, 3.0, 9.3},
	}
	return l
}

// ULP130 returns a 130 nm variant of the library, used by the
// measurement-rig substitute for the MSP430F1610 experiments of Chapter 2
// (different process, 8 MHz operating point). Energies and leakage scale
// up relative to ULP65 as older processes do.
func ULP130() *Library {
	l := ULP65().Scaled(3.4, 1.6)
	l.Name = "ULP130"
	l.FeatureNM = 130
	return l
}

// Scaled returns a copy of the library with all transition/clock energies
// multiplied by energyScale and leakage by leakScale. Used to derive
// operating points for other process nodes.
func (l *Library) Scaled(energyScale, leakScale float64) *Library {
	n := &Library{Name: l.Name + "-scaled", FeatureNM: l.FeatureNM}
	for k := range l.params {
		p := l.params[k]
		p.EnergyRise *= energyScale
		p.EnergyFall *= energyScale
		p.EnergyClk *= energyScale
		p.LeakageNW *= leakScale
		n.params[k] = p
	}
	return n
}

// Kinds returns all cell kinds in the library.
func Kinds() []Kind {
	ks := make([]Kind, 0, NumKinds)
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}
