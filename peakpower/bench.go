package peakpower

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
)

// BenchInfo describes one built-in benchmark (the paper's Table 4.1
// suite).
type BenchInfo struct {
	// Name is the paper's benchmark name (the AnalyzeBench key).
	Name string
	// Suite is the benchmark's group in Table 4.1.
	Suite string
	// Desc summarizes the kernel.
	Desc string
	// MaxCycles is the benchmark's calibrated exploration budget.
	MaxCycles int
}

// benchInfos converts an internal benchmark list to its public description.
func benchInfos(all []*bench.Benchmark) []BenchInfo {
	out := make([]BenchInfo, len(all))
	for i, b := range all {
		out[i] = BenchInfo{Name: b.Name, Suite: b.Suite, Desc: b.Desc, MaxCycles: b.MaxCycles}
	}
	return out
}

// Benchmarks lists the built-in suite in the paper's order.
func Benchmarks() []BenchInfo { return benchInfos(bench.All()) }

// Benchmarks lists the analyzer target's benchmark suite (the names
// AnalyzeBench accepts on this analyzer).
func (a *Analyzer) Benchmarks() []BenchInfo {
	return benchInfos(a.target.Benchmarks())
}

// targetBenchImage resolves a benchmark from a target's suite and its
// assembled image. Unknown names wrap ErrUnknownBench.
func targetBenchImage(t Target, name string) (*bench.Benchmark, *Image, error) {
	for _, b := range t.Benchmarks() {
		if b.Name != name {
			continue
		}
		img, err := b.Image()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrAssemble, err)
		}
		return b, img, nil
	}
	return nil, nil, fmt.Errorf("%w: %q on target %s (see Analyzer.Benchmarks)", ErrUnknownBench, name, t.Name())
}

// benchImage resolves a built-in benchmark and its assembled image.
func benchImage(name string) (*bench.Benchmark, *Image, error) {
	b := bench.ByName(name)
	if b == nil {
		return nil, nil, fmt.Errorf("%w: %q (see Benchmarks)", ErrUnknownBench, name)
	}
	img, err := b.Image()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrAssemble, err)
	}
	return b, img, nil
}

// BenchImage assembles (once) and returns a built-in benchmark's
// binary. Unknown names wrap ErrUnknownBench.
func BenchImage(name string) (*Image, error) {
	_, img, err := benchImage(name)
	return img, err
}

// BenchSource returns a built-in benchmark's assembly source — the
// starting point for optimization experiments.
func BenchSource(name string) (string, error) {
	b := bench.ByName(name)
	if b == nil {
		return "", fmt.Errorf("%w: %q (see Benchmarks)", ErrUnknownBench, name)
	}
	return b.Source, nil
}

// BenchInputs draws one concrete input set for a built-in benchmark,
// for profiling and validation runs against RunConcrete.
func BenchInputs(name string, r *rand.Rand) ([]uint16, error) {
	b := bench.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("%w: %q (see Benchmarks)", ErrUnknownBench, name)
	}
	if b.GenInputs == nil {
		return nil, nil
	}
	return b.GenInputs(r), nil
}
