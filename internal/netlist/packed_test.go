package netlist

import (
	"testing"

	"repro/internal/cell"
)

// planDesign builds a small mixed design: inputs, ties, flip-flops, a
// mux bank with a shared select (broadcast fan-in), and an XOR chain
// (consecutive fan-in).
func planDesign(t *testing.T) *Netlist {
	t.Helper()
	n := New("plan")
	sel := n.NewNet("sel")
	n.MarkInput(sel)
	ins := n.NewNets("in", 8)
	for _, id := range ins {
		n.MarkInput(id)
	}
	t1 := n.NewNet("")
	n.AddCell(cell.Tie1, "m", "", t1)
	q := make([]NetID, 4)
	for i := range q {
		q[i] = n.NewNet("")
	}
	// mux bank: shared select, bus data.
	mux := make([]NetID, 4)
	for i := range mux {
		mux[i] = n.NewNet("")
		n.AddCell(cell.Mux2, "m", "", mux[i], sel, ins[i], ins[i+4])
	}
	// xor chain over the mux outputs.
	x := make([]NetID, 4)
	for i := range x {
		x[i] = n.NewNet("")
		n.AddCell(cell.Xor2, "m", "", x[i], mux[i], q[i])
	}
	for i := range q {
		n.AddCell(cell.Dffr, "m", "", q[i], x[i], sel)
	}
	if err := n.Build(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPackedPlanInvariants(t *testing.T) {
	n := planDesign(t)
	p := n.Packed()

	// Every net has a unique position inside the plane.
	seen := make(map[int32]bool)
	for id, pos := range p.Pos {
		if pos < 0 || int(pos) >= p.Words*64 {
			t.Fatalf("net %d position %d out of range", id, pos)
		}
		if seen[pos] {
			t.Fatalf("position %d assigned twice", pos)
		}
		seen[pos] = true
	}

	// Inputs occupy [0, InputBits) in declaration order.
	if p.InputBits != len(n.Inputs()) {
		t.Fatalf("InputBits %d, want %d", p.InputBits, len(n.Inputs()))
	}
	for i, id := range n.Inputs() {
		if p.Pos[id] != int32(i) {
			t.Fatalf("input %d at position %d", i, p.Pos[id])
		}
	}

	// Batch outputs are consecutive, same-kind, and CellOfPos inverts.
	checkBatch := func(b *PackedBatch) {
		if b.NIn != b.Kind.NumInputs() {
			t.Fatalf("batch NIn %d, want %d", b.NIn, b.Kind.NumInputs())
		}
		for lane, ci := range b.Cells {
			c := n.Cell(ci)
			if c.Kind != b.Kind {
				t.Fatalf("batch of %v holds %v", b.Kind, c.Kind)
			}
			pos := b.FirstPos + int32(lane)
			if p.Pos[c.Out] != pos {
				t.Fatalf("lane %d output at %d, want %d", lane, p.Pos[c.Out], pos)
			}
			if p.CellOfPos[pos] != ci {
				t.Fatalf("CellOfPos[%d] = %d, want %d", pos, p.CellOfPos[pos], ci)
			}
			for pin := 0; pin < b.NIn; pin++ {
				if b.In[pin][lane] != p.Pos[c.In[pin]] {
					t.Fatalf("pin %d lane %d position mismatch", pin, lane)
				}
				w := b.In[pin][lane] >> 6
				if b.ReadMask[w>>6]>>(uint(w&63))&1 != 1 {
					t.Fatalf("ReadMask misses word %d", w)
				}
			}
		}
	}
	total := 0
	for bi := range p.Seq {
		checkBatch(&p.Seq[bi])
		total += len(p.Seq[bi].Cells)
	}
	for li := range p.Levels {
		for bi := range p.Levels[li].Batches {
			checkBatch(&p.Levels[li].Batches[bi])
			total += len(p.Levels[li].Batches[bi].Cells)
		}
	}
	if total != n.NumCells() {
		t.Fatalf("batches cover %d cells, want %d", total, n.NumCells())
	}
}

// TestGatherProgramsReproducePositions decodes every gather program
// back into per-lane source positions and checks it against In.
func TestGatherProgramsReproducePositions(t *testing.T) {
	n := planDesign(t)
	p := n.Packed()
	decode := func(b *PackedBatch, pin int) []int32 {
		out := make([]int32, len(b.Cells))
		for i := range out {
			out[i] = -1
		}
		for c := 0; c < b.Chunks(); c++ {
			for _, r := range b.Gather[pin][c] {
				if r.Bcast {
					t.Fatal("broadcast run in consecutive list")
				}
				for i := 0; i < int(r.N); i++ {
					out[c*64+int(r.Off)+i] = r.Src + int32(i)
				}
			}
			for _, r := range b.GatherB[pin][c] {
				if !r.Bcast {
					t.Fatal("consecutive run in broadcast list")
				}
				for i := 0; i < int(r.N); i++ {
					out[c*64+int(r.Off)+i] = r.Src
				}
			}
		}
		return out
	}
	sawBcast, sawLongRun := false, false
	check := func(b *PackedBatch) {
		for pin := 0; pin < b.NIn; pin++ {
			got := decode(b, pin)
			for lane, want := range b.In[pin] {
				if got[lane] != want {
					t.Fatalf("%v pin %d lane %d: gather yields %d, want %d",
						b.Kind, pin, lane, got[lane], want)
				}
			}
			for c := 0; c < b.Chunks(); c++ {
				for _, r := range b.GatherB[pin][c] {
					if r.N > 1 {
						sawBcast = true
					}
				}
				for _, r := range b.Gather[pin][c] {
					if r.N > 1 {
						sawLongRun = true
					}
				}
			}
		}
	}
	for bi := range p.Seq {
		check(&p.Seq[bi])
	}
	for li := range p.Levels {
		for bi := range p.Levels[li].Batches {
			check(&p.Levels[li].Batches[bi])
		}
	}
	// The design was built to exercise both compressions.
	if !sawBcast {
		t.Error("shared mux select should compile to a broadcast run")
	}
	if !sawLongRun {
		t.Error("bus fan-in should compile to a multi-bit run")
	}
}
