package netlist

import (
	"sort"

	"repro/internal/cell"
)

// PackedPlan is the build-time layout the bit-packed gate engine in
// internal/gsim evaluates: every net is assigned a bit position in a
// pair of 64-bit planes (value/known), and cells are grouped into
// same-kind batches — flip-flops by kind, combinational cells by
// (topological level, kind) — whose output positions are consecutive,
// so one word operation evaluates up to 64 gates.
//
// The layout is: primary inputs first (so input staging and dirty
// detection touch a compact word range), then flip-flop outputs grouped
// by kind, then each topological level's outputs grouped by kind, then
// any remaining unconnected nets. Because positions follow dataflow
// order, fan-in is frequently consecutive (bus wiring, stage-to-stage
// batches), which the per-batch gather programs exploit: each input pin
// vector is run-length compressed into GatherRun chunk copies instead
// of per-bit extraction.
//
// Dirty scheduling works on plane-word granularity. Every batch (and
// every level) carries a ReadMask over plane words; the engine marks a
// word dirty when a value in it changes, and a batch or level whose
// ReadMask intersects no dirty word is skipped for the cycle — its
// outputs provably equal the previous cycle's.
//
// A PackedPlan is immutable after Build and shared by every simulator
// instance of the netlist, like the netlist itself.
type PackedPlan struct {
	// Words is the plane length in 64-bit words.
	Words int
	// MaskWords is the length of dirty bitsets and ReadMask slices:
	// one bit per plane word.
	MaskWords int
	// Pos maps each net to its plane bit position.
	Pos []int32
	// CellOfPos maps a plane bit position to the cell driving that net,
	// or -1 for primary inputs and undriven nets.
	CellOfPos []CellID
	// InputBits is the number of primary inputs; they occupy positions
	// [0, InputBits).
	InputBits int
	// Seq holds the flip-flop batches (evaluated at the clock edge).
	Seq []PackedBatch
	// Levels holds per-topological-level combinational batches.
	Levels []PackedLevel
}

// PackedLevel is one topological level of combinational batches.
type PackedLevel struct {
	// Batches are the level's same-kind cell groups.
	Batches []PackedBatch
	// ReadMask is the union of the batches' ReadMasks: one bit per
	// plane word read by any input pin in the level.
	ReadMask []uint64
}

// PackedBatch is a run of same-kind cells whose output nets occupy the
// consecutive plane positions [FirstPos, FirstPos+len(Cells)).
type PackedBatch struct {
	// Kind is the shared cell kind.
	Kind cell.Kind
	// NIn caches Kind.NumInputs() for the engine's hot loops.
	NIn int
	// Cells lists the batch members; lane i drives position FirstPos+i.
	Cells []CellID
	// FirstPos is the plane bit position of lane 0's output.
	FirstPos int32
	// In holds, per used input pin, the plane position of each lane's
	// input net (lane-indexed); unused pin slots are nil. Diagnostics
	// and tests walk these; value evaluation uses the gather programs.
	In [3][]int32
	// Gather holds, per used input pin, the run-length-compressed
	// gather program per 64-lane chunk: Gather[pin][chunk] assembles
	// the chunk's input word from consecutive-source-bit runs.
	// Broadcast runs are split into GatherB so the executor loops stay
	// branch-free.
	Gather [3][][]GatherRun
	// GatherB holds the broadcast runs (one source bit replicated into
	// N lanes), per pin per chunk; nil when a chunk has none.
	GatherB [3][][]GatherRun
	// ReadMask flags the plane words read by any input pin (one bit per
	// plane word): the batch's dirty-skip test.
	ReadMask []uint64
}

// Chunks returns the number of 64-lane chunks in the batch.
func (b *PackedBatch) Chunks() int { return (len(b.Cells) + 63) / 64 }

// GatherRun copies N plane bits into a chunk word at bit offset Off.
// Consecutive runs copy bits [Src, Src+N); broadcast runs replicate the
// single bit Src into N lanes (shared fan-in, e.g. one select net
// driving a whole mux bank). Runs never span chunk boundaries.
type GatherRun struct {
	// Src is the first (or only, for broadcast) source plane bit.
	Src int32
	// Off is the destination bit offset within the chunk word.
	Off uint8
	// N is the run length in bits (1..64).
	N uint8
	// Bcast marks a broadcast run.
	Bcast bool
}

// Packed returns the packed-evaluation plan computed by Build. It
// panics if the netlist has not been built.
func (n *Netlist) Packed() *PackedPlan {
	if !n.built {
		panic("netlist: Packed before Build")
	}
	return n.packed
}

// buildPacked computes the PackedPlan for a just-validated netlist; it
// runs as the final stage of Build, after levelization.
func (n *Netlist) buildPacked() {
	numNets := len(n.netNames)
	p := &PackedPlan{Pos: make([]int32, numNets)}
	for i := range p.Pos {
		p.Pos[i] = -1
	}
	next := int32(0)

	// 1. Primary inputs.
	for _, id := range n.inputs {
		p.Pos[id] = next
		next++
	}
	p.InputBits = int(next)

	// A batch claims the next positions for its cells' outputs.
	mkBatch := func(kind cell.Kind, cells []CellID) PackedBatch {
		b := PackedBatch{Kind: kind, NIn: kind.NumInputs(), Cells: cells, FirstPos: next}
		for _, ci := range cells {
			p.Pos[n.cells[ci].Out] = next
			next++
		}
		return b
	}

	// 2. Flip-flop outputs, grouped by kind.
	buckets := make([][]CellID, cell.NumKinds)
	for _, ci := range n.seq {
		k := n.cells[ci].Kind
		buckets[k] = append(buckets[k], ci)
	}
	for k := range buckets {
		if len(buckets[k]) > 0 {
			// Copy out of the reusable bucket: step 3 truncates and
			// refills the same backing arrays per level.
			cs := make([]CellID, len(buckets[k]))
			copy(cs, buckets[k])
			p.Seq = append(p.Seq, mkBatch(cell.Kind(k), cs))
		}
	}

	// 3. Combinational levels, each grouped by kind. Within a batch,
	// lanes are ordered by fan-in position (a free permutation: lane
	// order only decides which output bit a cell drives), which turns
	// bus-shaped fan-in into long consecutive gather runs.
	p.Levels = make([]PackedLevel, len(n.levels))
	for li, lvl := range n.levels {
		for k := range buckets {
			buckets[k] = buckets[k][:0]
		}
		for _, ci := range lvl {
			k := n.cells[ci].Kind
			buckets[k] = append(buckets[k], ci)
		}
		for k := range buckets {
			if len(buckets[k]) > 0 {
				cs := make([]CellID, len(buckets[k]))
				copy(cs, buckets[k])
				p.sortLanes(n, cell.Kind(k), cs)
				p.Levels[li].Batches = append(p.Levels[li].Batches, mkBatch(cell.Kind(k), cs))
			}
		}
	}

	// 4. Leftover nets (allocated but neither inputs nor driven): they
	// hold X forever, exactly like the scalar engine's untouched slots.
	for id := range p.Pos {
		if p.Pos[id] < 0 {
			p.Pos[id] = next
			next++
		}
	}
	p.Words = int(next+63) / 64
	p.MaskWords = (p.Words + 63) / 64

	// Second pass: per-pin input positions and gather programs, read
	// masks (flip-flop fan-in may live in later-assigned groups, so
	// this cannot be fused with position assignment).
	for bi := range p.Seq {
		p.finishBatch(n, &p.Seq[bi])
	}
	for li := range p.Levels {
		lv := &p.Levels[li]
		lv.ReadMask = make([]uint64, p.MaskWords)
		for bi := range lv.Batches {
			p.finishBatch(n, &lv.Batches[bi])
			for w, m := range lv.Batches[bi].ReadMask {
				lv.ReadMask[w] |= m
			}
		}
	}

	p.CellOfPos = make([]CellID, p.Words*64)
	for i := range p.CellOfPos {
		p.CellOfPos[i] = -1
	}
	for ci := range n.cells {
		p.CellOfPos[p.Pos[n.cells[ci].Out]] = CellID(ci)
	}
	n.packed = p
}

// finishBatch fills a batch's input-pin position vectors, gather
// programs, and read mask.
func (p *PackedPlan) finishBatch(n *Netlist, b *PackedBatch) {
	b.ReadMask = make([]uint64, p.MaskWords)
	lanes := len(b.Cells)
	for pin := 0; pin < b.Kind.NumInputs(); pin++ {
		in := make([]int32, lanes)
		for i, ci := range b.Cells {
			pos := p.Pos[n.cells[ci].In[pin]]
			in[i] = pos
			w := pos >> 6
			b.ReadMask[w>>6] |= 1 << uint(w&63)
		}
		b.In[pin] = in
		b.Gather[pin], b.GatherB[pin] = compileGather(in)
	}
}

// sortLanes orders a combinational batch's cells by fan-in position so
// that gather programs compress well: bus-shaped fan-in becomes one
// consecutive run per pin, shared fan-in one broadcast run. Mux banks
// sort by data pins (the select is usually one shared net).
func (p *PackedPlan) sortLanes(n *Netlist, kind cell.Kind, cs []CellID) {
	pinOrder := [3]int{0, 1, 2}
	if kind == cell.Mux2 {
		pinOrder = [3]int{1, 2, 0} // (D0, D1, S)
	}
	nin := kind.NumInputs()
	key := func(ci CellID) [3]int32 {
		var k [3]int32
		for i := 0; i < nin; i++ {
			k[i] = p.Pos[n.cells[ci].In[pinOrder[i]]]
		}
		return k
	}
	sort.SliceStable(cs, func(a, b int) bool {
		ka, kb := key(cs[a]), key(cs[b])
		for i := 0; i < nin; i++ {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
}

// compileGather run-length compresses a pin's lane positions into per-
// chunk copy programs: maximal runs of consecutive (or repeated) source
// positions become one multi-bit extraction (or broadcast) each,
// emitted into separate consecutive/broadcast lists.
func compileGather(in []int32) (consecs, bcasts [][]GatherRun) {
	chunks := (len(in) + 63) / 64
	consecs = make([][]GatherRun, chunks)
	bcasts = make([][]GatherRun, chunks)
	for c := 0; c < chunks; c++ {
		lo := c * 64
		hi := min(lo+64, len(in))
		for i := lo; i < hi; {
			consec, rep := i+1, i+1
			for consec < hi && in[consec] == in[consec-1]+1 {
				consec++
			}
			for rep < hi && in[rep] == in[i] {
				rep++
			}
			r := GatherRun{Src: in[i], Off: uint8(i - lo)}
			if rep > consec {
				r.N, r.Bcast = uint8(rep-i), true
				bcasts[c] = append(bcasts[c], r)
				i = rep
			} else {
				r.N = uint8(consec - i)
				consecs[c] = append(consecs[c], r)
				i = consec
			}
		}
	}
	return consecs, bcasts
}
