// Command stressgen evolves a power stressmark for the ULP430 with a
// genetic algorithm (the AUDIT-style baseline of Section 4.2) and prints
// the winning program and its measured power.
//
// Usage:
//
//	stressgen [-genes 24] [-pop 16] [-gens 12] [-seed 1] [-avg]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline"
	"repro/internal/cell"
	"repro/internal/power"
	"repro/internal/ulp430"
)

func main() {
	genes := flag.Int("genes", 24, "instruction slots per individual")
	pop := flag.Int("pop", 16, "population size")
	gens := flag.Int("gens", 12, "generations")
	seed := flag.Int64("seed", 1, "random seed")
	avg := flag.Bool("avg", false, "target average power instead of peak")
	flag.Parse()

	nl, err := ulp430.BuildCPU()
	if err != nil {
		fatal(err)
	}
	m := power.Model{Lib: cell.ULP65(), ClockHz: 100e6}
	res, err := baseline.Stressmark(nl, m, baseline.StressOptions{
		Genes: *genes, Population: *pop, Generations: *gens, Seed: *seed,
		TargetAverage: *avg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; evolved stressmark — peak %.3f mW, average %.3f mW (%d evaluations)\n",
		res.PeakMW, res.AvgMW, res.Evals)
	fmt.Printf("; guardbanded peak: %.3f mW, guardbanded NPE: %.3e J/cycle\n",
		res.GuardbandedPeakMW, res.GuardbandedNPE)
	fmt.Println(res.Source)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stressgen:", err)
	os.Exit(1)
}
