package bench_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/energy"
	"repro/internal/isim"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/symx"
	"repro/internal/ulp430"
)

var (
	cpuOnce sync.Once
	cpuNet  *netlist.Netlist
)

func sharedCPU(t *testing.T) *netlist.Netlist {
	t.Helper()
	cpuOnce.Do(func() {
		n, err := ulp430.BuildCPU()
		if err != nil {
			panic(err)
		}
		cpuNet = n
	})
	return cpuNet
}

func model() power.Model { return power.Model{Lib: cell.ULP65(), ClockHz: 100e6} }

func TestSuiteInventory(t *testing.T) {
	want := []string{"autoCorr", "binSearch", "FFT", "intFilt", "mult", "PI",
		"tea8", "tHold", "div", "inSort", "rle", "intAVG", "ConvEn", "Viterbi"}
	got := bench.Names()
	if len(got) != 14 {
		t.Fatalf("suite has %d benchmarks, want 14", len(got))
	}
	for _, name := range want {
		if bench.ByName(name) == nil {
			t.Errorf("missing benchmark %s", name)
		}
	}
	if bench.ByName("nope") != nil {
		t.Error("ByName should return nil for unknown")
	}
	// Table 4.1 grouping.
	groups := map[string]int{}
	for _, b := range bench.All() {
		groups[b.Suite]++
	}
	if groups["Embedded Sensor"] != 9 || groups["EEMBC"] != 4 || groups["Control Systems"] != 1 {
		t.Errorf("suite grouping: %v", groups)
	}
}

func TestAllAssemble(t *testing.T) {
	for _, b := range bench.All() {
		if _, err := b.Image(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

// runISS runs a benchmark on the reference simulator with one drawn
// input set.
func runISS(t *testing.T, b *bench.Benchmark, seed int64) *isim.Machine {
	t.Helper()
	img, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	m, err := isim.New(img, b.GenInputs(r))
	if err != nil {
		t.Fatal(err)
	}
	if b.UsesPort {
		m.PortIn = b.GenPort(r)
	}
	if err := m.Run(300000); err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return m
}

func TestAllRunOnISS(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				m := runISS(t, b, seed)
				if m.Insns == 0 {
					t.Fatal("no instructions executed")
				}
			}
		})
	}
}

// Functional spot checks of benchmark semantics on the ISS.
func TestKernelSemantics(t *testing.T) {
	t.Run("binSearch finds present key", func(t *testing.T) {
		img, _ := bench.ByName("binSearch").Image()
		m, _ := isim.New(img, []uint16{42})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(img.Symbols["res"]); got != 4 {
			t.Fatalf("res = %d, want index 4", got)
		}
	})
	t.Run("binSearch misses absent key", func(t *testing.T) {
		img, _ := bench.ByName("binSearch").Image()
		m, _ := isim.New(img, []uint16{43})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(img.Symbols["res"]); got != 0xFFFF {
			t.Fatalf("res = %#x, want 0xffff", got)
		}
	})
	t.Run("mult computes dot product", func(t *testing.T) {
		img, _ := bench.ByName("mult").Image()
		m, _ := isim.New(img, []uint16{2, 3, 4, 5, 10, 20, 30, 40})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		want := uint32(2*10 + 3*20 + 4*30 + 5*40)
		lo := uint32(m.Mem(img.Symbols["dot"]))
		hi := uint32(m.Mem(img.Symbols["dot"] + 2))
		if lo|hi<<16 != want {
			t.Fatalf("dot = %d, want %d", lo|hi<<16, want)
		}
	})
	t.Run("inSort sorts", func(t *testing.T) {
		img, _ := bench.ByName("inSort").Image()
		m, _ := isim.New(img, []uint16{900, 12, 550, 12})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		base := img.Symbols["arr"]
		want := []uint16{12, 12, 550, 900}
		for i, w := range want {
			if got := m.Mem(base + uint16(2*i)); got != w {
				t.Fatalf("arr[%d] = %d, want %d", i, got, w)
			}
		}
	})
	t.Run("div divides", func(t *testing.T) {
		img, _ := bench.ByName("div").Image()
		// Dividend's high 8 bits get divided (8 quotient steps over a
		// left-shifting register): 0xC800>>8 = 200, 200/9 = 22 rem 2.
		m, _ := isim.New(img, []uint16{0xC800, 9})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if q := m.Mem(img.Symbols["q"]); q != 22 {
			t.Fatalf("q = %d, want 22", q)
		}
		if r := m.Mem(img.Symbols["rem"]); r != 2 {
			t.Fatalf("rem = %d, want 2", r)
		}
	})
	t.Run("rle encodes runs", func(t *testing.T) {
		img, _ := bench.ByName("rle").Image()
		m, _ := isim.New(img, []uint16{7, 7, 7, 2, 2, 9})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		base := img.Symbols["rout"]
		want := []uint16{7, 3, 2, 2, 9, 1}
		for i, w := range want {
			if got := m.Mem(base + uint16(2*i)); got != w {
				t.Fatalf("rout[%d] = %d, want %d", i, got, w)
			}
		}
		if got := m.Mem(img.Symbols["rlen"]); got != 6 {
			t.Fatalf("rlen = %d, want 6", got)
		}
	})
	t.Run("intAVG averages", func(t *testing.T) {
		img, _ := bench.ByName("intAVG").Image()
		m, _ := isim.New(img, []uint16{8, 16, 24, 32, 40, 48, 56, 64})
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(img.Symbols["avg"]); got != 36 {
			t.Fatalf("avg = %d, want 36", got)
		}
	})
	t.Run("tHold counts exceedances", func(t *testing.T) {
		img, _ := bench.ByName("tHold").Image()
		m, _ := isim.New(img, nil)
		seq := []uint16{50, 0x150, 0x200, 10, 0x300} // wait x1, cross, then 2 of 3 above
		i := 0
		m.PortIn = func() uint16 { v := seq[i]; i++; return v }
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem(img.Symbols["cnt"]); got != 2 {
			t.Fatalf("cnt = %d, want 2", got)
		}
	})
	t.Run("ConvEn encodes known vector", func(t *testing.T) {
		img, _ := bench.ByName("ConvEn").Image()
		m, _ := isim.New(img, []uint16{0x0001}) // single 1 bit then zeros
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		// First processed bit is 1 (state 001 -> g1=1,g2=1), then state
		// 010 (g1=1,g2=0), then 100 (g1=1,g2=1), then zeros.
		got := m.Mem(img.Symbols["cout"])
		want := uint16(0b11_10_11_00_00_00_00_00)
		if got != want {
			t.Fatalf("cout = %#016b, want %#016b", got, want)
		}
	})
}

// TestGateLevelDifferential runs every benchmark on both the reference
// simulator and the gate-level system and compares architectural results.
func TestGateLevelDifferential(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img, err := b.Image()
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(7))
			inputs := b.GenInputs(r)
			iss, err := isim.New(img, inputs)
			if err != nil {
				t.Fatal(err)
			}
			var portISS, portGate func() uint16
			if b.UsesPort {
				portISS = b.GenPort(rand.New(rand.NewSource(11)))
				portGate = b.GenPort(rand.New(rand.NewSource(11)))
			}
			iss.PortIn = portISS
			if err := iss.Run(300000); err != nil {
				t.Fatal(err)
			}
			sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, inputs)
			if err != nil {
				t.Fatal(err)
			}
			sys.PortIn = portGate
			sys.Reset()
			if err := sys.RunToHalt(2_000_000); err != nil {
				t.Fatal(err)
			}
			// Compare all RAM words the ISS wrote.
			for addr := uint16(0x0200); addr < 0x0A00; addr += 2 {
				hw := sys.MemWord(addr)
				v, ok := hw.Uint()
				if !ok {
					continue // never written at gate level either
				}
				if uint16(v) != iss.Mem(addr) {
					t.Errorf("mem[%#04x] = %#04x (hw) vs %#04x (iss)", addr, v, iss.Mem(addr))
				}
			}
			// Cycle model agreement (boot + halt-latch offset of 2).
			if got := sys.Sim.Cycle() - 2; got != iss.Cycles+2 {
				t.Errorf("cycles: hw %d vs iss %d", got, iss.Cycles)
			}
		})
	}
}

// Explore runs symbolic analysis on a benchmark and returns tree + sink.
func exploreBench(t *testing.T, b *bench.Benchmark) (*symx.Tree, *power.Sink) {
	t.Helper()
	img, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.SymbolicInputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := power.NewSink(sys, model(), img, 8)
	tree, err := symx.Explore(sys, sink, symx.Options{MaxCycles: b.MaxCycles, MaxNodes: 60000})
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return tree, sink
}

// TestSymbolicAnalysisAllBenchmarks is the full Algorithm 1+2 pass over
// the suite, checking the paper's containment properties per benchmark:
// the X-based peak power bounds every observed input-based peak, and the
// X-based potentially-toggled set contains every concretely-toggled set.
func TestSymbolicAnalysisAllBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && (b.Name == "div" || b.Name == "inSort" || b.Name == "Viterbi") {
				t.Skip("large path count; run without -short")
			}
			tree, sink := exploreBench(t, b)
			if tree.Paths == 0 || sink.PeakMW() <= 0 {
				t.Fatalf("paths=%d peak=%f", tree.Paths, sink.PeakMW())
			}
			img, _ := b.Image()
			res, err := energy.PeakEnergy(tree, img, 100e6)
			if err != nil {
				t.Fatalf("energy: %v", err)
			}
			if res.EnergyJ <= 0 || res.NPEJPerCycle <= 0 {
				t.Fatalf("energy result %+v", res)
			}

			// Validation against concrete runs.
			for seed := int64(1); seed <= 2; seed++ {
				r := rand.New(rand.NewSource(seed))
				inputs := b.GenInputs(r)
				sys, err := ulp430.NewSystem(sharedCPU(t), cell.ULP65(), img, ulp430.ConcreteInputs, inputs)
				if err != nil {
					t.Fatal(err)
				}
				if b.UsesPort {
					sys.PortIn = b.GenPort(r)
				}
				csink := power.NewSink(sys, model(), img, 0)
				sys.Reset()
				for i := 0; i < 2_000_000 && !sys.Halted(); i++ {
					sys.Step()
					csink.OnCycle(sys)
				}
				if !sys.Halted() {
					t.Fatal("concrete run did not halt")
				}
				if csink.PeakMW() > sink.PeakMW()+1e-9 {
					t.Errorf("seed %d: concrete peak %.4f mW > X-bound %.4f mW",
						seed, csink.PeakMW(), sink.PeakMW())
				}
				for ci, act := range csink.UnionActive {
					if act && !sink.UnionActive[ci] {
						t.Fatalf("seed %d: cell %d toggles concretely but missing from X-based set", seed, ci)
					}
				}
				// Concrete energy cannot exceed the peak-energy bound.
				concE := 0.0
				for _, mw := range csink.Trace {
					concE += mw * 1e-3 / 100e6
				}
				if concE > res.EnergyJ+1e-12 {
					t.Errorf("seed %d: concrete energy %.3e J > bound %.3e J", seed, concE, res.EnergyJ)
				}
			}
		})
	}
}
